package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"regexp"
	"strings"
	"testing"
)

// TestAnalyzerFixtures drives every analyzer over its testdata fixture
// package. Each `// want "rx"` comment demands a diagnostic on its line
// whose message matches the regexp; any diagnostic without a matching want
// (or vice versa) fails the test. The fixtures also cover justified and
// unjustified //machlint:allow suppressions.
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			runFixture(t, a)
		})
	}
}

var wantRx = regexp.MustCompile(`"([^"]*)"`)

func runFixture(t *testing.T, a *Analyzer) {
	t.Helper()
	loader := NewLoader()
	units, err := loader.LoadDir("testdata/src/"+a.Name, "testdata/src/"+a.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 {
		t.Fatalf("fixture loaded as %d units, want 1", len(units))
	}
	u := units[0]
	for _, terr := range u.TypeErrors {
		t.Errorf("fixture must type-check cleanly: %v", terr)
	}
	diags, _ := runUnit(u, DefaultConfig(), []*Analyzer{a}, CollectFacts(units))

	// Collect want expectations per line. Block-comment wants
	// (/* want "rx" */) let a fixture line that is itself a //machlint
	// directive still carry an expectation.
	type want struct {
		rx  *regexp.Regexp
		hit bool
	}
	wants := map[int][]*want{}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				line := u.Fset.Position(c.Pos()).Line
				for _, m := range wantRx.FindAllStringSubmatch(text, -1) {
					wants[line] = append(wants[line], &want{rx: regexp.MustCompile(m[1])})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture for %s has no want annotations", a.Name)
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants[d.Pos.Line] {
			if !w.hit && w.rx.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s", d)
		}
	}
	for line, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("line %d: missing diagnostic matching %q", line, w.rx)
			}
		}
	}
}

// TestSeededViolationsExitNonzero pins the acceptance contract: a tree
// seeded with one violation per check makes the full pipeline report
// findings and Main return exit code 1, with every check represented.
func TestSeededViolationsExitNonzero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main(".", []string{"./testdata/src/seeded"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("Main = %d on seeded violations, want 1 (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	for _, a := range Analyzers() {
		if !strings.Contains(out, " "+a.Name+": ") {
			t.Errorf("seeded run missing a %s finding:\n%s", a.Name, out)
		}
	}
}

// TestCleanPackageExitsZero is the other half of the exit-code contract.
func TestCleanPackageExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main(".", []string{"./testdata/src/clean"}, &stdout, &stderr); code != 0 {
		t.Fatalf("Main = %d on clean package, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

// TestChecksFlag covers -checks subsetting and unknown-check rejection.
func TestChecksFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// Only mutexcopy enabled: the seeded maprange/floateq/... violations
	// must not be reported.
	code := Main(".", []string{"-checks", "mutexcopy", "./testdata/src/seeded"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("Main = %d, want 1", code)
	}
	if strings.Contains(stdout.String(), "maprange") {
		t.Errorf("-checks mutexcopy still reported maprange:\n%s", stdout.String())
	}
	if code := Main(".", []string{"-checks", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown check: Main = %d, want 2", code)
	}
}

// TestDefaultConfigScoping pins the package-scoped policy: globalrand
// guards the simulation core but not the benchmark harness or the CLIs.
func TestDefaultConfigScoping(t *testing.T) {
	cfg := DefaultConfig()
	gr := cfg.rule("globalrand")
	for _, path := range []string{"internal/hfl", "internal/fed", "internal/mobility", "internal/nn", "internal/tensor", "internal/sampling"} {
		if !gr.appliesTo(path) {
			t.Errorf("globalrand must apply to %s", path)
		}
	}
	for _, path := range []string{"internal/bench", "cmd/machsim", "cmd", "examples/quickstart"} {
		if gr.appliesTo(path) {
			t.Errorf("globalrand must not apply to %s", path)
		}
	}
	// Prefix matching is segment-aware: cmdx is not under cmd.
	if !cfg.rule("floateq").appliesTo("cmdx") {
		t.Error("floateq should apply to cmdx")
	}
	if pathMatch("cmdx", []string{"cmd"}) {
		t.Error("pathMatch must not treat cmdx as under cmd")
	}
	only := &Rule{Enabled: true, Only: []string{"internal"}, Skip: []string{"internal/bench"}}
	if !only.appliesTo("internal/hfl") || only.appliesTo("internal/bench") || only.appliesTo("cmd") {
		t.Error("Only/Skip composition broken")
	}
	if (&Rule{}).appliesTo("internal/hfl") {
		t.Error("disabled rule must not apply")
	}
	if cfg.rule("nosuch").appliesTo("internal/hfl") {
		t.Error("unknown checks must resolve to the disabled rule")
	}
}

// TestSuppressionParsing pins the directive grammar: multi-check lists,
// required justifications, and same-line vs line-above placement.
func TestSuppressionParsing(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //machlint:allow floateq,errdrop zero is a sentinel here
	//machlint:allow maprange
	_ = 2
	/* machlint:allow mutexcopy block comments work too */
	_ = 3
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sups := parseSuppressions(fset, f)
	if len(sups) != 3 {
		t.Fatalf("parsed %d suppressions, want 3: %+v", len(sups), sups)
	}
	if got := sups[0].checks; len(got) != 2 || got[0] != "floateq" || got[1] != "errdrop" {
		t.Errorf("multi-check list parsed as %v", got)
	}
	if sups[0].reason != "zero is a sentinel here" {
		t.Errorf("reason parsed as %q", sups[0].reason)
	}
	if sups[1].reason != "" {
		t.Errorf("bare directive should have empty reason, got %q", sups[1].reason)
	}
}

// TestSuppressionIndex verifies justified directives cover their own line
// and the next, and unjustified ones cover nothing.
func TestSuppressionIndex(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //machlint:allow floateq justified trailing
	//machlint:allow maprange justified standalone
	_ = 2
	//machlint:allow errdrop
	_ = 3
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := buildSuppressionIndex(&Unit{Path: "p", Fset: fset, Files: []*ast.File{f}})
	diag := func(line int, check string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: "p.go", Line: line}, Check: check}
	}
	if !idx.suppressed(diag(4, "floateq")) {
		t.Error("trailing justified directive must suppress its own line")
	}
	if !idx.suppressed(diag(6, "maprange")) {
		t.Error("standalone justified directive must suppress the next line")
	}
	if idx.suppressed(diag(4, "errdrop")) {
		t.Error("directive must only suppress its named checks")
	}
	if idx.suppressed(diag(8, "errdrop")) {
		t.Error("unjustified directive must suppress nothing")
	}
}

// TestExpandPatterns verifies recursive walks skip testdata while explicit
// paths honor it, and that results are stable.
func TestExpandPatterns(t *testing.T) {
	dirs, err := ExpandPatterns(".", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("recursive walk must skip testdata, got %s", d)
		}
	}
	explicit, err := ExpandPatterns(".", []string{"testdata/src/clean", "./testdata/src/clean"})
	if err != nil {
		t.Fatal(err)
	}
	if len(explicit) != 1 || explicit[0] != "testdata/src/clean" {
		t.Errorf("explicit testdata pattern = %v, want the deduplicated dir", explicit)
	}
}

// TestDiagnosticString pins the parseable output format editors rely on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "a/b.go", Line: 7, Column: 3},
		Check:   "maprange",
		Message: "m",
	}
	if got, want := d.String(), "a/b.go:7:3: maprange: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestSortDiagnostics pins stable ordering across files, lines and checks.
func TestSortDiagnostics(t *testing.T) {
	mk := func(file string, line, col int, check string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: file, Line: line, Column: col}, Check: check}
	}
	diags := []Diagnostic{
		mk("b.go", 1, 1, "floateq"),
		mk("a.go", 9, 1, "maprange"),
		mk("a.go", 2, 5, "floateq"),
		mk("a.go", 2, 5, "errdrop"),
	}
	sortDiagnostics(diags)
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%s:%d:%s", d.Pos.Filename, d.Pos.Line, d.Check))
	}
	want := []string{"a.go:2:errdrop", "a.go:2:floateq", "a.go:9:maprange", "b.go:1:floateq"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}
