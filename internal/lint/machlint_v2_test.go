package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCrossUnitFactPropagation is the driver-level contract of the fact
// index: the //machlint:noalias contract on tensor.MatMulInto is declared
// in internal/tensor, and the violating call lives in a different package
// (testdata/src/factuse). Finding it requires the facts collected from the
// defining unit to resolve for a types.Func reached through an import.
func TestCrossUnitFactPropagation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Keep([]string{"intoalias"})
	r := &Runner{Root: "../..", Config: cfg}
	diags, err := r.Run([]string{"internal/tensor", "internal/lint/testdata/src/factuse"})
	if err != nil {
		t.Fatal(err)
	}
	var hit []string
	for _, d := range diags {
		hit = append(hit, d.String())
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly the factuse aliasing finding, got %d:\n%s", len(diags), strings.Join(hit, "\n"))
	}
	d := diags[0]
	if !strings.Contains(d.Pos.Filename, "factuse") || d.Check != "intoalias" ||
		!strings.Contains(d.Message, "may alias") || !strings.Contains(d.Message, "MatMulInto") {
		t.Fatalf("unexpected finding: %s", d)
	}
}

// TestStaleSuppressionAudit verifies a justified //machlint:allow that
// waives nothing is reported, and only when its check actually ran there.
func TestStaleSuppressionAudit(t *testing.T) {
	r := &Runner{Root: ".", Config: DefaultConfig()}
	diags, err := r.Run([]string{"testdata/src/stalesup"})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Check != "allow" || !strings.Contains(diags[0].Message, "stale suppression") {
		t.Fatalf("want one stale-suppression finding, got %v", diags)
	}

	// With floateq disabled the suppression's check never ran, so the
	// directive must not be called stale.
	cfg := DefaultConfig()
	cfg.Keep([]string{"maprange"})
	r = &Runner{Root: ".", Config: cfg}
	diags, err = r.Run([]string{"testdata/src/stalesup"})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("disabled check must not trigger the audit, got %v", diags)
	}
}

// TestParseEscapeLine pins the -gcflags=-m output grammar the allocfree
// check depends on.
func TestParseEscapeLine(t *testing.T) {
	cases := []struct {
		line string
		keep bool
	}{
		{"internal/hfl/run.go:10:5: make([]float64, n) escapes to heap:", true},
		{"internal/hfl/run.go:10:5: moved to heap: buf", true},
		{"internal/hfl/run.go:10:5: buf does not escape", false},
		{"internal/hfl/run.go:10:5: can inline edgeDecide", false},
		{"# github.com/mach-fl/mach/internal/hfl", false},
		{"go: downloading something", false},
		{"internal/hfl/run.go:10: malformed, no column", false},
	}
	for _, c := range cases {
		site, ok := parseEscapeLine(".", c.line)
		if ok != c.keep {
			t.Errorf("parseEscapeLine(%q) kept=%v, want %v", c.line, ok, c.keep)
		}
		if ok && (site.line != 10 || site.pos.Line != 10) {
			t.Errorf("parseEscapeLine(%q) line = %d, want 10", c.line, site.line)
		}
	}
}

// TestAllocBudgetRoundTrip covers the budget file format: comments,
// blanks, and write/read symmetry.
func TestAllocBudgetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "allocs.txt")
	counts := map[string]int{
		"internal/hfl.(*Engine).edgeDecide": 3,
		"internal/sampling.EdgeSamplingInto": 0,
	}
	if err := WriteAllocBudget(path, counts); err != nil {
		t.Fatal(err)
	}
	budget, err := ReadAllocBudget(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(budget) != 2 || budget["internal/hfl.(*Engine).edgeDecide"].Count != 3 {
		t.Fatalf("round trip lost data: %+v", budget)
	}
	if missing, err := ReadAllocBudget(filepath.Join(t.TempDir(), "nope.txt")); err != nil || len(missing) != 0 {
		t.Fatalf("missing budget must read as empty, got %v, %v", missing, err)
	}
	if err := os.WriteFile(path, []byte("too many fields here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAllocBudget(path); err == nil {
		t.Fatal("malformed budget line must error")
	}
}

// TestAllocFreeIntegration drives the escape-analysis phase end to end
// over the compiled fixture: regeneration, a clean run against the written
// budget, and the three failure modes (over budget, stale entry, orphan
// entry).
func TestAllocFreeIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real compiler")
	}
	budget := filepath.Join(t.TempDir(), "allocs.txt")
	newRunner := func() *Runner {
		return &Runner{Root: ".", Config: DefaultConfig(), AllocBudget: budget}
	}
	pats := []string{"testdata/src/allocfree"}

	if _, err := newRunner().WriteAllocs(pats); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(budget)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "testdata/src/allocfree.SumInPlace 0") {
		t.Fatalf("budget missing the allocation-free function:\n%s", text)
	}
	if !strings.Contains(text, "testdata/src/allocfree.LeakyAppend") || strings.Contains(text, "LeakyAppend 0") {
		t.Fatalf("budget must record LeakyAppend's allocation site(s):\n%s", text)
	}
	if strings.Contains(text, "Unannotated") {
		t.Fatalf("unannotated functions must stay out of the budget:\n%s", text)
	}

	diags, err := newRunner().Run(pats)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("fresh budget must lint clean, got %v", diags)
	}

	check := func(mutate func(string) string, wantSub string) {
		t.Helper()
		if err := os.WriteFile(budget, []byte(mutate(text)), 0o644); err != nil {
			t.Fatal(err)
		}
		diags, err := newRunner().Run(pats)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, d := range diags {
			if d.Check == AllocFreeName && strings.Contains(d.Message, wantSub) {
				found = true
			}
		}
		if !found {
			t.Fatalf("want an allocfree finding containing %q, got %v", wantSub, diags)
		}
	}
	// Over budget: LeakyAppend committed to zero sites.
	check(func(s string) string {
		return strings.ReplaceAll(s, "LeakyAppend 1", "LeakyAppend 0")
	}, "heap-allocation site(s), budget 0")
	// Stale: budget says more sites than the code has.
	check(func(s string) string {
		return strings.ReplaceAll(s, "LeakyAppend 1", "LeakyAppend 5")
	}, "stale budget")
	// Orphan: entry for a function without the annotation — exactly what
	// deleting //machlint:allocfree from a covered hot path produces.
	check(func(s string) string {
		return s + "testdata/src/allocfree.Ghost 2\n"
	}, "no //machlint:allocfree function")
}

// TestBuildLedger pins the ledger format and its hard-error contract.
func TestBuildLedger(t *testing.T) {
	text, err := BuildLedger(".", []string{"testdata/src/intoalias"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "testdata/src/intoalias/a.go intoalias x1 — fixture pins that a justified waiver silences the finding") {
		t.Fatalf("ledger missing the fixture suppression:\n%s", text)
	}
	if !strings.Contains(text, "# total: 1 suppression(s)") {
		t.Fatalf("ledger total wrong:\n%s", text)
	}
	// The maprange fixture deliberately contains an unjustified directive;
	// the ledger must refuse to inventory it.
	if _, err := BuildLedger(".", []string{"testdata/src/maprange"}); err == nil {
		t.Fatal("BuildLedger must reject unjustified directives")
	}
}

// TestLedgerFlagMatchesCommitted is the CI gate in miniature: regenerating
// the ledger over the whole repo must reproduce the committed file
// byte-for-byte.
func TestLedgerFlagMatchesCommitted(t *testing.T) {
	if testing.Short() {
		t.Skip("walks the whole repository")
	}
	var stdout, stderr bytes.Buffer
	if code := Main("../..", []string{"-ledger", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("machlint -ledger = %d (stderr: %s)", code, stderr.String())
	}
	committed, err := os.ReadFile("../../lint_ledger.txt")
	if err != nil {
		t.Fatal(err)
	}
	if stdout.String() != string(committed) {
		t.Fatalf("committed lint_ledger.txt is stale; regenerate with make lint-ledger")
	}
}

// TestTreeCleanAtHead is the golden acceptance gate: machlint over the
// whole repository — all nine AST analyzers, the allocfree escape phase
// against the committed budget, and the suppression audit — reports
// nothing.
func TestTreeCleanAtHead(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole repository")
	}
	var stdout, stderr bytes.Buffer
	if code := Main("../..", []string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("machlint ./... = %d at HEAD, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

// TestAllChecks pins the check inventory the CLI validates against.
func TestAllChecks(t *testing.T) {
	checks := AllChecks()
	if len(checks) != len(Analyzers())+1 {
		t.Fatalf("AllChecks has %d entries for %d analyzers + allocfree", len(checks), len(Analyzers()))
	}
	set := map[string]bool{}
	for _, c := range checks {
		set[c] = true
	}
	for _, want := range []string{"randshare", "intoalias", "selectdet", "allocfree", "maprange"} {
		if !set[want] {
			t.Fatalf("AllChecks missing %q: %v", want, checks)
		}
	}
}
