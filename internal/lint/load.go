package lint

import (
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/mach-fl/mach/internal/det"
)

// Unit is one type-checked body of files: a package together with its
// in-package test files (exactly what `go test` compiles), or an external
// foo_test package. Analyzers run per unit.
type Unit struct {
	// Path is the slash-separated package directory relative to the lint
	// root.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// TypeErrors collects non-fatal type-checker complaints. Analysis
	// still runs on the partial information; the driver surfaces these as
	// warnings because missing type info can hide findings.
	TypeErrors []error
}

// Loader parses and type-checks package directories. It resolves imports
// from source via the standard library's source importer (module-aware
// through go/build), so the whole pipeline stays dependency-free. One
// Loader caches imported packages across LoadDir calls; it is not safe for
// concurrent use.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// LoadDir parses every .go file in dir and type-checks it as up to two
// units: the primary package (including in-package tests) and, when
// present, the external _test package. path is the package path recorded
// on the units.
func (l *Loader) LoadDir(dir, path string) ([]*Unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: read %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)

	byPkg := map[string][]*ast.File{}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		byPkg[f.Name.Name] = append(byPkg[f.Name.Name], f)
	}
	if len(byPkg) == 0 {
		return nil, nil
	}

	// The primary package is the one not named *_test; its in-package
	// test files share its name and are type-checked with it, exactly as
	// `go test` compiles them.
	var units []*Unit
	for _, pkgName := range det.SortedKeys(byPkg) {
		if strings.HasSuffix(pkgName, "_test") {
			base := strings.TrimSuffix(pkgName, "_test")
			if _, ok := byPkg[base]; ok {
				continue // handled below as the external test unit
			}
		}
		units = append(units, l.check(path, pkgName, byPkg[pkgName]))
		if ext, ok := byPkg[pkgName+"_test"]; ok {
			units = append(units, l.check(path, pkgName+"_test", ext))
		}
	}
	return units, nil
}

func (l *Loader) check(path, pkgName string, files []*ast.File) *Unit {
	u := &Unit{Path: path, Fset: l.fset, Files: files}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { u.TypeErrors = append(u.TypeErrors, err) },
	}
	// Check never fully fails here: the Error hook swallows problems so
	// analysis can proceed on whatever type information survived.
	//machlint:allow errdrop the Error hook above already collected every type error; Check's summary error is redundant
	pkg, _ := conf.Check(pkgName, l.fset, files, info)
	u.Pkg = pkg
	u.Info = info
	return u
}

// ExpandPatterns resolves package patterns relative to root into a sorted
// list of package directories (relative, slash-separated). A trailing
// "/..." walks recursively; testdata, vendor and hidden/underscore
// directories are skipped during walks but honored when named explicitly.
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(rel string) {
		rel = filepath.ToSlash(filepath.Clean(rel))
		if !seen[rel] {
			seen[rel] = true
			dirs = append(dirs, rel)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(root, filepath.FromSlash(pat))
		fi, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		if !recursive {
			if hasGoFiles(base) {
				add(pat)
			}
			continue
		}
		err = filepath.WalkDir(base, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				rel, err := filepath.Rel(root, p)
				if err != nil {
					return err
				}
				add(rel)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: walk %q: %w", pat, err)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}

// Runner ties the loader, configuration and analyzer set together.
type Runner struct {
	// Root is the directory patterns are resolved against (the module
	// root when invoked via `make lint`).
	Root   string
	Config *Config
	// Stderr receives type-checker warnings; nil silences them.
	Stderr io.Writer
	// AllocBudget overrides the allocfree budget file location — relative
	// to Root unless absolute. Empty means DefaultAllocBudgetPath. Tests
	// use this to point fixture runs at fixture budgets.
	AllocBudget string
}

// Run lints the packages matched by patterns and returns the surviving
// findings, sorted by position.
func (r *Runner) Run(patterns []string) ([]Diagnostic, error) {
	return r.run(patterns, false)
}

// WriteAllocs regenerates the allocfree budget file from the current tree
// (the -write-allocs flag) and returns the non-allocfree findings.
func (r *Runner) WriteAllocs(patterns []string) ([]Diagnostic, error) {
	return r.run(patterns, true)
}

// run is the two-phase driver. Phase one loads and type-checks every
// matched package, collects the cross-unit function facts, and applies the
// AST analyzers per unit. Phase two — gated on the allocfree rule and on
// there being anything to check — compiles the matched packages with
// -gcflags=-m and audits the escape sites of annotated functions against
// the committed budget. Finally every justified-but-unused suppression in
// scope of a check that actually ran is reported as stale.
func (r *Runner) run(patterns []string, writeAllocs bool) ([]Diagnostic, error) {
	dirs, err := ExpandPatterns(r.Root, patterns)
	if err != nil {
		return nil, err
	}
	loader := NewLoader()
	var units []*Unit
	for _, dir := range dirs {
		dirUnits, err := loader.LoadDir(filepath.Join(r.Root, filepath.FromSlash(dir)), dir)
		if err != nil {
			return nil, err
		}
		for _, u := range dirUnits {
			if r.Stderr != nil {
				for _, terr := range u.TypeErrors {
					fmt.Fprintf(r.Stderr, "machlint: warning: %s: %v\n", dir, terr)
				}
			}
			units = append(units, u)
		}
	}

	facts := CollectFacts(units)
	analyzers := Analyzers()
	var diags []Diagnostic
	merged := newSuppressionIndex()
	for _, u := range units {
		unitDiags, idx := runUnit(u, r.Config, analyzers, facts)
		diags = append(diags, unitDiags...)
		merged.merge(idx)
	}

	escapeRan, afDiags, err := r.allocFreePhase(loader.fset, facts, dirs, merged, writeAllocs)
	if err != nil {
		return nil, err
	}
	diags = append(diags, afDiags...)

	diags = append(diags, merged.unusedDiags(func(s *suppression, check string) bool {
		rule := r.Config.rule(check)
		if !rule.appliesTo(s.path) || (rule.SkipTests && s.isTest) {
			return false
		}
		if check == AllocFreeName {
			return escapeRan
		}
		return true
	})...)
	sortDiagnostics(diags)
	return diags, nil
}

// allocFreePhase runs the escape-analysis check when it can produce
// findings: the rule is enabled and the tree has //machlint:allocfree
// annotations, a budget file, or an explicit regeneration request. The
// gate keeps annotation-free invocations (fixture tests, subset runs) from
// paying for a compile.
func (r *Runner) allocFreePhase(fset *token.FileSet, facts *Facts, dirs []string, merged *suppressionIndex, writeAllocs bool) (bool, []Diagnostic, error) {
	if !r.Config.rule(AllocFreeName).Enabled {
		return false, nil, nil
	}
	hasAnnotations := false
	for _, ff := range facts.All {
		if ff.AllocFree {
			hasAnnotations = true
			break
		}
	}
	display := r.AllocBudget
	if display == "" {
		display = DefaultAllocBudgetPath
	}
	budgetPath := display
	if !filepath.IsAbs(budgetPath) {
		budgetPath = filepath.Join(r.Root, budgetPath)
	}
	_, statErr := os.Stat(budgetPath)
	if !hasAnnotations && statErr != nil && !writeAllocs {
		return false, nil, nil
	}
	sites, err := runEscapeAnalysis(r.Root, dirs)
	if err != nil {
		return false, nil, err
	}
	counts, first := countEscapes(facts, sites)
	if writeAllocs {
		// Regeneration audits nothing, so allocfree suppressions must not
		// be called stale on this pass: report escapeRan=false.
		return false, nil, WriteAllocBudget(budgetPath, counts)
	}
	budget, err := ReadAllocBudget(budgetPath)
	if err != nil {
		return false, nil, err
	}
	var kept []Diagnostic
	for _, d := range checkAllocBudget(fset, facts, counts, first, budget, display, dirs) {
		if !merged.suppressed(d) {
			kept = append(kept, d)
		}
	}
	return true, kept, nil
}

// Main is the machlint CLI: it parses flags and patterns out of args,
// lints, prints findings to stdout, and returns the process exit code
// (0 clean, 1 findings, 2 usage or load failure). cmd/machlint is a thin
// wrapper; keeping the logic here makes the nonzero-exit contract
// testable.
func Main(root string, args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("machlint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	checks := flags.String("checks", "", "comma-separated subset of checks to run (default: all)")
	ledger := flags.Bool("ledger", false, "print the //machlint:allow suppression ledger to stdout and exit (redirect to "+DefaultLedgerPath+")")
	writeAllocs := flags.Bool("write-allocs", false, "regenerate the allocfree budget file ("+DefaultAllocBudgetPath+") from the current tree")
	flags.Usage = func() {
		fmt.Fprintf(stderr, "usage: machlint [-checks c1,c2] [-ledger | -write-allocs] [packages]\n\nchecks:\n")
		for _, a := range Analyzers() {
			fmt.Fprintf(stderr, "  %-11s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "  %-11s %s\n", AllocFreeName, AllocFreeDoc)
		fmt.Fprintf(stderr, "\nfunction annotations: //machlint:noalias <p,q>..., //machlint:aliasok <why>, //machlint:allocfree\nsuppression: //machlint:allow <check>[,<check>...] <justification>\n\n")
		flags.PrintDefaults()
	}
	if err := flags.Parse(args); err != nil {
		return 2
	}
	cfg := DefaultConfig()
	if *checks != "" {
		names := strings.Split(*checks, ",")
		known := allChecksSet()
		for _, n := range names {
			if !known[strings.TrimSpace(n)] {
				fmt.Fprintf(stderr, "machlint: unknown check %q (known: %s)\n", strings.TrimSpace(n), strings.Join(AllChecks(), ", "))
				return 2
			}
		}
		cfg.Keep(names)
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *ledger {
		text, err := BuildLedger(root, patterns)
		if err != nil {
			fmt.Fprintf(stderr, "machlint: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, text)
		return 0
	}
	r := &Runner{Root: root, Config: cfg, Stderr: stderr}
	var diags []Diagnostic
	var err error
	if *writeAllocs {
		diags, err = r.WriteAllocs(patterns)
	} else {
		diags, err = r.Run(patterns)
	}
	if err != nil {
		fmt.Fprintf(stderr, "machlint: %v\n", err)
		return 2
	}
	if *writeAllocs {
		fmt.Fprintf(stderr, "machlint: wrote %s\n", DefaultAllocBudgetPath)
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "machlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
