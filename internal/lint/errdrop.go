package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags error return values that are dropped: calls used as bare
// statements (including go/defer) whose results include an error, and
// error results explicitly discarded into the blank identifier. A small
// package-scoped allowlist (Rule.Allow, keyed by types.Func.FullName)
// admits callees that are documented never to fail, like strings.Builder
// writes. Everything else must handle the error or carry a justified
// //machlint:allow errdrop.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "error return value ignored or discarded into _",
	Run:  runErrDrop,
}

func runErrDrop(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				p.checkIgnoredCall(n.X)
			case *ast.GoStmt:
				p.checkIgnoredCall(n.Call)
			case *ast.DeferStmt:
				p.checkIgnoredCall(n.Call)
			case *ast.AssignStmt:
				p.checkBlankedErrors(n)
			}
			return true
		})
	}
}

// checkIgnoredCall reports a call used for effect only whose results
// include an error.
func (p *Pass) checkIgnoredCall(e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || !callReturnsError(p, call) {
		return
	}
	if name := calleeName(p, call); p.Rule.allows(name) {
		return
	}
	p.Reportf(call.Pos(), "%s returns an error that is ignored; handle it or justify with //machlint:allow errdrop", calleeName(p, call))
}

// checkBlankedErrors reports error results assigned to the blank
// identifier, in both the multi-result form `v, _ := f()` and the direct
// form `_ = f()`.
func (p *Pass) checkBlankedErrors(as *ast.AssignStmt) {
	// Multi-result call: one call expression fanned out over the LHS.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := p.TypeOf(call).(*types.Tuple)
		if !ok || tuple.Len() != len(as.Lhs) {
			return
		}
		if name := calleeName(p, call); p.Rule.allows(name) {
			return
		}
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) && isBlank(as.Lhs[i]) {
				p.Reportf(as.Lhs[i].Pos(), "error result of %s discarded into _; handle it or justify with //machlint:allow errdrop", calleeName(p, call))
			}
		}
		return
	}
	// One-to-one assignments: flag `_ = expr` where expr is an error.
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) || !isBlank(lhs) {
			continue
		}
		rhs := ast.Unparen(as.Rhs[i])
		if !isErrorType(p.TypeOf(rhs)) {
			continue
		}
		if call, ok := rhs.(*ast.CallExpr); ok && p.Rule.allows(calleeName(p, call)) {
			continue
		}
		p.Reportf(lhs.Pos(), "error value discarded into _; handle it or justify with //machlint:allow errdrop")
	}
}

// callReturnsError reports whether any result of the call is an error.
// Conversions and builtins never are.
func callReturnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.TypeOf(call)
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// calleeName renders the callee for messages and allowlist matching:
// types.Func.FullName when resolvable (e.g. "(*strings.Builder).WriteString"),
// otherwise the source expression.
func calleeName(p *Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(p, call); fn != nil {
		return fn.FullName()
	}
	return types.ExprString(call.Fun)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}
