package lint

import "sort"

// Analyzers returns the full AST-analyzer suite in stable order. The
// allocfree check is not in this list: it is driven by the compiler's
// escape analysis rather than a Run function, and the Runner schedules it
// as a separate phase (see allocfree.go). AllChecks covers both.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapRange, GlobalRand, WallTime, FloatEq, ErrDrop, MutexCopy,
		RandShare, IntoAlias, SelectDet,
	}
}

// AllChecks returns every check name the suite knows — the nine AST
// analyzers plus the build-integrated allocfree check — sorted. This is
// the set -checks and //machlint:allow directives are validated against.
func AllChecks() []string {
	names := []string{AllocFreeName}
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

func allChecksSet() map[string]bool {
	set := map[string]bool{}
	for _, n := range AllChecks() {
		set[n] = true
	}
	return set
}
