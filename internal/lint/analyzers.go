package lint

// Analyzers returns the full machlint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapRange, GlobalRand, WallTime, FloatEq, ErrDrop, MutexCopy}
}
