// Package lint implements machlint, the repo's custom static-analysis
// suite. It enforces the determinism, float-safety and error-handling
// invariants that the runtime tests (DESIGN.md §5) can only spot-check:
// no observable map-iteration order, no wall-clock or global-randomness
// reads inside the simulation core, no exact float comparison, no dropped
// errors, no by-value lock copies.
//
// The suite is built only on the standard library (go/parser, go/ast,
// go/types, go/token), honoring the repo's stdlib-only rule. Analyzers are
// pluggable (Analyzer), findings carry file:line:col positions
// (Diagnostic), enablement is package-scoped (Config), and individual
// findings can be waived in source with a justified suppression comment:
//
//	//machlint:allow <check>[,<check>...] <justification>
//
// placed either at the end of the offending line or on the line
// immediately above it. A suppression without a justification is
// deliberately inert: every waiver must say why.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: where, which check, and what is wrong.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the canonical "path:line:col: check: message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one pluggable check. Run inspects the files of a Pass and
// reports findings through it; the driver handles configuration scoping,
// test-file exemption and suppression comments, so analyzers stay pure.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is one analyzer applied to one type-checked unit (a package,
// possibly including its in-package test files, or an external test
// package). Files is already filtered down to the files the analyzer
// should inspect (test files are removed when the rule says so).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the files to inspect.
	Files []*ast.File
	// Path is the slash-separated package directory relative to the lint
	// root, e.g. "internal/fed". Package-scoped configuration matches on
	// this path.
	Path string
	Pkg  *types.Package
	Info *types.Info
	// Rule is the effective configuration for this analyzer in this
	// package (never nil; used e.g. for the errdrop allowlist).
	Rule *Rule

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil when type information
// is unavailable (e.g. the unit had type errors). Analyzers must treat a
// nil result as "unknown" and stay silent rather than guess.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	return p.Info.ObjectOf(id)
}

// isTestFile reports whether the file at this position is a _test.go file.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// AllowDirective is the comment marker that waives a finding.
const AllowDirective = "machlint:allow"

// suppression is one parsed allow comment.
type suppression struct {
	file   string
	line   int // line the comment appears on
	checks []string
	reason string
}

// parseSuppressions extracts every justified machlint:allow directive from
// a file's comments. Directives without a justification are returned with
// an empty reason and never suppress anything.
func parseSuppressions(fset *token.FileSet, f *ast.File) []suppression {
	var out []suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			text = strings.TrimSuffix(text, "*/")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, AllowDirective) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, AllowDirective))
			if rest == "" {
				continue
			}
			fields := strings.Fields(rest)
			pos := fset.Position(c.Pos())
			out = append(out, suppression{
				file:   pos.Filename,
				line:   pos.Line,
				checks: strings.Split(fields[0], ","),
				reason: strings.TrimSpace(strings.TrimPrefix(rest, fields[0])),
			})
		}
	}
	return out
}

// suppressionIndex answers "is (file, line, check) waived?".
type suppressionIndex map[string]map[int]map[string]bool

func buildSuppressionIndex(fset *token.FileSet, files []*ast.File) suppressionIndex {
	idx := suppressionIndex{}
	add := func(file string, line int, check string) {
		if idx[file] == nil {
			idx[file] = map[int]map[string]bool{}
		}
		if idx[file][line] == nil {
			idx[file][line] = map[string]bool{}
		}
		idx[file][line][check] = true
	}
	for _, f := range files {
		for _, s := range parseSuppressions(fset, f) {
			if s.reason == "" {
				continue // unjustified waivers are inert by design
			}
			for _, c := range s.checks {
				c = strings.TrimSpace(c)
				if c == "" {
					continue
				}
				// A trailing comment covers its own line; a standalone
				// comment covers the line below it. Registering both is
				// harmless because diagnostics never sit on a pure
				// comment line's directive itself.
				add(s.file, s.line, c)
				add(s.file, s.line+1, c)
			}
		}
	}
	return idx
}

func (idx suppressionIndex) suppressed(d Diagnostic) bool {
	return idx[d.Pos.Filename][d.Pos.Line][d.Check]
}

// runUnit applies every configured analyzer to one type-checked unit and
// returns the surviving (non-suppressed) diagnostics.
func runUnit(u *Unit, cfg *Config, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	idx := buildSuppressionIndex(u.Fset, u.Files)
	for _, a := range analyzers {
		rule := cfg.rule(a.Name)
		if !rule.appliesTo(u.Path) {
			continue
		}
		files := u.Files
		if rule.SkipTests {
			files = nil
			for _, f := range u.Files {
				if !isTestFile(u.Fset, f) {
					files = append(files, f)
				}
			}
		}
		if len(files) == 0 {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     u.Fset,
			Files:    files,
			Path:     u.Path,
			Pkg:      u.Pkg,
			Info:     u.Info,
			Rule:     rule,
			diags:    &diags,
		}
		a.Run(pass)
	}
	kept := diags[:0]
	for _, d := range diags {
		if !idx.suppressed(d) {
			kept = append(kept, d)
		}
	}
	return kept
}

// sortDiagnostics orders findings by file, line, column, then check name,
// so output is stable regardless of analyzer scheduling.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}
