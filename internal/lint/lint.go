// Package lint implements machlint, the repo's custom static-analysis
// suite. It enforces the determinism, float-safety and error-handling
// invariants that the runtime tests (DESIGN.md §5) can only spot-check:
// no observable map-iteration order, no wall-clock or global-randomness
// reads inside the simulation core, no exact float comparison, no dropped
// errors, no by-value lock copies, no constant-seeded or goroutine-shared
// rand streams, no scheduler-ordered channel patterns, no aliasing-contract
// violations on *Into buffer functions, and no heap allocations creeping
// into //machlint:allocfree hot paths beyond the committed budget.
//
// The suite is built only on the standard library (go/parser, go/ast,
// go/types, go/token), honoring the repo's stdlib-only rule. Analyzers are
// pluggable (Analyzer), findings carry file:line:col positions
// (Diagnostic), enablement is package-scoped (Config), and whole-package
// facts — the //machlint:noalias, //machlint:aliasok and
// //machlint:allocfree contracts on function declarations — are collected
// across every loaded unit before analyzers run (Facts), so call sites are
// checked against contracts declared in other packages.
//
// Individual findings can be waived in source with a justified suppression
// comment:
//
//	//machlint:allow <check>[,<check>...] <justification>
//
// placed either at the end of the offending line or on the line
// immediately above it. Suppressions are themselves linted: a directive
// without a justification or naming an unknown check is a hard error, and
// a justified suppression that no longer waives anything is reported as
// stale, so the committed ledger (lint_ledger.txt, `machlint -ledger`)
// stays an exact inventory of the repo's debt.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: where, which check, and what is wrong.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the canonical "path:line:col: check: message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one pluggable check. Run inspects the files of a Pass and
// reports findings through it; the driver handles configuration scoping,
// test-file exemption and suppression comments, so analyzers stay pure.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is one analyzer applied to one type-checked unit (a package,
// possibly including its in-package test files, or an external test
// package). Files is already filtered down to the files the analyzer
// should inspect (test files are removed when the rule says so).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the files to inspect.
	Files []*ast.File
	// Path is the slash-separated package directory relative to the lint
	// root, e.g. "internal/fed". Package-scoped configuration matches on
	// this path.
	Path string
	Pkg  *types.Package
	Info *types.Info
	// Rule is the effective configuration for this analyzer in this
	// package (never nil; used e.g. for the errdrop allowlist).
	Rule *Rule
	// Facts indexes the annotation-declared contracts of every function in
	// every loaded unit (never nil; empty when the driver ran without a
	// collection pass).
	Facts *Facts

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil when type information
// is unavailable (e.g. the unit had type errors). Analyzers must treat a
// nil result as "unknown" and stay silent rather than guess.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	return p.Info.ObjectOf(id)
}

// isTestFile reports whether the file at this position is a _test.go file.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// AllowDirective is the comment marker that waives a finding.
const AllowDirective = "machlint:allow"

// suppression is one parsed allow comment.
type suppression struct {
	file   string
	line   int // line the comment appears on
	checks []string
	reason string
	// path and isTest locate the suppression for the staleness audit: a
	// suppression is only expected to fire where its check actually runs.
	path   string
	isTest bool
	// used flips when the suppression waives at least one diagnostic.
	used bool
}

// parseSuppressions extracts every machlint:allow directive from a file's
// comments, malformed ones included (empty checks / empty reason) — the
// driver turns those into hard errors rather than ignoring them.
func parseSuppressions(fset *token.FileSet, f *ast.File) []*suppression {
	var out []*suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			text = strings.TrimSuffix(text, "*/")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, AllowDirective) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, AllowDirective))
			pos := fset.Position(c.Pos())
			s := &suppression{file: pos.Filename, line: pos.Line}
			if rest != "" {
				fields := strings.Fields(rest)
				for _, c := range strings.Split(fields[0], ",") {
					if c = strings.TrimSpace(c); c != "" {
						s.checks = append(s.checks, c)
					}
				}
				s.reason = strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
			}
			out = append(out, s)
		}
	}
	return out
}

// suppressionIndex answers "is (file, line, check) waived?" and remembers
// which directives actually fired, for the staleness audit.
type suppressionIndex struct {
	byLine map[string]map[int]map[string]*suppression
	all    []*suppression
}

func newSuppressionIndex() *suppressionIndex {
	return &suppressionIndex{byLine: map[string]map[int]map[string]*suppression{}}
}

func buildSuppressionIndex(u *Unit) *suppressionIndex {
	idx := newSuppressionIndex()
	for _, f := range u.Files {
		test := isTestFile(u.Fset, f)
		for _, s := range parseSuppressions(u.Fset, f) {
			s.path = u.Path
			s.isTest = test
			idx.all = append(idx.all, s)
			if s.reason == "" || len(s.checks) == 0 {
				continue // malformed: reported as an error, never suppresses
			}
			for _, c := range s.checks {
				// A trailing comment covers its own line; a standalone
				// comment covers the line below it. Registering both is
				// harmless because diagnostics never sit on a pure
				// comment line's directive itself.
				idx.add(s.file, s.line, c, s)
				idx.add(s.file, s.line+1, c, s)
			}
		}
	}
	return idx
}

func (idx *suppressionIndex) add(file string, line int, check string, s *suppression) {
	if idx.byLine[file] == nil {
		idx.byLine[file] = map[int]map[string]*suppression{}
	}
	if idx.byLine[file][line] == nil {
		idx.byLine[file][line] = map[string]*suppression{}
	}
	idx.byLine[file][line][check] = s
}

// suppressed reports whether d is waived, marking the waiving directive
// used.
func (idx *suppressionIndex) suppressed(d Diagnostic) bool {
	s := idx.byLine[d.Pos.Filename][d.Pos.Line][d.Check]
	if s == nil {
		return false
	}
	s.used = true
	return true
}

// merge folds other's directives into idx (used for the whole-run index
// the allocfree phase and the staleness audit consult).
func (idx *suppressionIndex) merge(other *suppressionIndex) {
	idx.all = append(idx.all, other.all...)
	for file, lines := range other.byLine {
		for line, checks := range lines {
			for check, s := range checks {
				idx.add(file, line, check, s)
			}
		}
	}
}

// directiveDiags reports malformed directives — missing check name,
// missing justification, or an unknown check — as hard errors under the
// pseudo-check "allow". These are never themselves suppressible.
func (idx *suppressionIndex) directiveDiags(known map[string]bool) []Diagnostic {
	var diags []Diagnostic
	report := func(s *suppression, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     token.Position{Filename: s.file, Line: s.line, Column: 1},
			Check:   "allow",
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, s := range idx.all {
		switch {
		case len(s.checks) == 0:
			report(s, "//machlint:allow names no check; use //machlint:allow <check> <justification>")
		case s.reason == "":
			report(s, "//machlint:allow %s has no justification; every waiver must say why", strings.Join(s.checks, ","))
		default:
			for _, c := range s.checks {
				if !known[c] {
					report(s, "//machlint:allow names unknown check %q (known: %s)", c, strings.Join(AllChecks(), ", "))
				}
			}
		}
	}
	return diags
}

// unusedDiags reports justified suppressions that waived nothing this run.
// active filters to directives whose check actually ran at that location,
// so a suppression is not called stale merely because its check is skipped
// there (or the run was restricted with -checks).
func (idx *suppressionIndex) unusedDiags(active func(s *suppression, check string) bool) []Diagnostic {
	var diags []Diagnostic
	for _, s := range idx.all {
		if s.used || s.reason == "" || len(s.checks) == 0 {
			continue
		}
		ran := false
		for _, c := range s.checks {
			if active(s, c) {
				ran = true
				break
			}
		}
		if !ran {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:     token.Position{Filename: s.file, Line: s.line, Column: 1},
			Check:   "allow",
			Message: fmt.Sprintf("stale suppression: //machlint:allow %s no longer waives any finding; delete it (ledger: make lint-ledger)", strings.Join(s.checks, ",")),
		})
	}
	return diags
}

// runUnit applies every configured analyzer to one type-checked unit and
// returns the surviving (non-suppressed) diagnostics plus the unit's
// suppression index (with used-markings) for whole-run bookkeeping.
// Malformed allow directives are appended as unsuppressible errors.
func runUnit(u *Unit, cfg *Config, analyzers []*Analyzer, facts *Facts) ([]Diagnostic, *suppressionIndex) {
	var diags []Diagnostic
	idx := buildSuppressionIndex(u)
	if facts == nil {
		facts = &Facts{byPos: map[string]*FuncFacts{}}
	}
	for _, a := range analyzers {
		rule := cfg.rule(a.Name)
		if !rule.appliesTo(u.Path) {
			continue
		}
		files := u.Files
		if rule.SkipTests {
			files = nil
			for _, f := range u.Files {
				if !isTestFile(u.Fset, f) {
					files = append(files, f)
				}
			}
		}
		if len(files) == 0 {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     u.Fset,
			Files:    files,
			Path:     u.Path,
			Pkg:      u.Pkg,
			Info:     u.Info,
			Rule:     rule,
			Facts:    facts,
			diags:    &diags,
		}
		a.Run(pass)
	}
	kept := diags[:0]
	for _, d := range diags {
		if !idx.suppressed(d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, idx.directiveDiags(allChecksSet())...)
	return kept, idx
}

// sortDiagnostics orders findings by file, line, column, then check name,
// so output is stable regardless of analyzer scheduling.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}
