package lint

import (
	"go/ast"
	"go/types"
)

// GlobalRand forbids the two ambient-state reads that silently break
// reproducibility inside the simulation core: package-level math/rand
// functions (they draw from a shared, unseeded source) and wall-clock
// reads (time.Now / time.Since / time.Until). Randomness must flow through
// a seeded *rand.Rand threaded from the config; wall time belongs to the
// benchmark harness and the CLIs, which DefaultConfig exempts.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "global math/rand or wall-clock read inside the deterministic simulation core",
	Run:  runGlobalRand,
}

// randConstructors are the math/rand (and /v2) package-level functions
// that build explicit, seedable state rather than drawing from the global
// source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2 sources
}

// clockFuncs are the time package functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runGlobalRand(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.ObjectOf(pkgIdent).(*types.PkgName)
			if !ok {
				return true
			}
			// Only package-level functions are hazards; type references
			// (rand.Rand) and anything reached through a value (r.Intn)
			// are fine.
			fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
			if !ok {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			switch pn.Imported().Path() {
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					p.Reportf(sel.Pos(), "%s.%s draws from the shared global source; thread a seeded *rand.Rand from the config instead", pkgIdent.Name, fn.Name())
				}
			case "time":
				if clockFuncs[fn.Name()] {
					p.Reportf(sel.Pos(), "wall-clock read %s.%s inside the simulation core breaks reproducibility; measure time through internal/telemetry's clock instead", pkgIdent.Name, fn.Name())
				}
			}
			return true
		})
	}
}
