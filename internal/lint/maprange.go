package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags `range` over a map whose body makes the (intentionally
// randomized) iteration order observable: accumulating floats, appending
// to a slice, or issuing net/rpc calls. Those were exactly the hazards
// live in fed.groupByHost and mobility.EstimateTransitions before this
// check existed. The remediation is to iterate a sorted key slice
// (det.SortedKeys) or to collect keys at insertion time.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "range over a map with an order-sensitive body (float accumulation, append, RPC)",
	Run:  runMapRange,
}

func runMapRange(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if hazard := mapRangeHazard(p, rs.Body); hazard != "" {
				p.Reportf(rs.For, "map iteration order is randomized, and this body %s; iterate sorted keys (det.SortedKeys) or collect keys at insertion", hazard)
			}
			return true
		})
	}
}

// mapRangeHazard walks a range body (including nested closures) for the
// first construct that makes iteration order observable.
func mapRangeHazard(p *Pass, body *ast.BlockStmt) string {
	var hazard string
	ast.Inspect(body, func(n ast.Node) bool {
		if hazard != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if isFloat(p.TypeOf(lhs)) {
						hazard = "accumulates floating-point values in iteration order"
					}
				}
			case token.ASSIGN:
				// x = x + v spelled without the compound operator.
				for i, lhs := range n.Lhs {
					if i < len(n.Rhs) && isFloat(p.TypeOf(lhs)) && selfReferential(lhs, n.Rhs[i]) {
						hazard = "accumulates floating-point values in iteration order"
					}
				}
			}
		case *ast.IncDecStmt:
			if isFloat(p.TypeOf(n.X)) {
				hazard = "accumulates floating-point values in iteration order"
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := p.ObjectOf(id).(*types.Builtin); isBuiltin || p.Info == nil {
					hazard = "appends to a slice in iteration order"
				}
			} else if fn := calleeFunc(p, n); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "net/rpc" && (fn.Name() == "Call" || fn.Name() == "Go") {
				hazard = "issues RPCs in iteration order"
			}
		}
		return true
	})
	return hazard
}

// selfReferential reports whether rhs syntactically contains lhs (compared
// by rendered expression), i.e. `x = x + v`.
func selfReferential(lhs, rhs ast.Expr) bool {
	want := types.ExprString(lhs)
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && types.ExprString(e) == want {
			found = true
		}
		return !found
	})
	return found
}

// isFloat reports whether t is float32 or float64 (possibly named).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0 && b.Info()&types.IsComplex == 0
}

// calleeFunc resolves the *types.Func a call invokes, or nil for func
// values, builtins, conversions and unresolved callees.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	if p.Info == nil {
		return nil
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}
