package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// IntoAlias enforces the aliasing contract of the repo's `*Into` functions
// (the allocation-free fast paths that write results into caller-owned
// buffers). Three rules:
//
//  1. Contract declaration: every function whose name ends in "Into" and
//     that has at least one pair of potentially-overlapping parameters
//     (two slices of the same element type, or two pointers to the same
//     type) must declare its contract — //machlint:noalias for functions
//     that corrupt results under aliasing (the in-place matmul kernels
//     read operands while writing dst), or //machlint:aliasok with a
//     justification for functions engineered to tolerate it
//     (capProbabilitiesInto accumulates the total before the first
//     write). Deleting an annotation from a covered function is a hard
//     lint error, not a silent loss of coverage.
//  2. Annotation validity: noalias groups must name real parameters (and
//     at least two per group); aliasok requires a justification; a
//     function cannot declare both.
//  3. Call-site checking: at every call of a noalias-annotated function —
//     including cross-package calls, via the driver's fact index — the
//     arguments bound to a group's parameters must not refer to the same
//     storage. "May alias" is syntactic: both arguments resolve to the
//     same root variable with one access path a prefix of the other
//     (probs vs probs, st.buf vs st.buf[1:], x vs x.field). Expressions
//     rooted in fresh values (calls, literals) never alias.
var IntoAlias = &Analyzer{
	Name: "intoalias",
	Doc:  "aliasing-contract violations on *Into buffer functions (//machlint:noalias, //machlint:aliasok)",
	Run:  runIntoAlias,
}

func runIntoAlias(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				p.checkIntoDecl(n)
			case *ast.CallExpr:
				p.checkIntoCall(n)
			}
			return true
		})
	}
}

// checkIntoDecl validates a declaration's annotations and requires a
// contract on alias-prone *Into functions.
func (p *Pass) checkIntoDecl(fd *ast.FuncDecl) {
	fact := p.Facts.ByFunc(p.Fset, fd.Name.Pos())
	params := paramNames(fd)
	if fact != nil {
		if len(fact.NoAliasGroups) > 0 && fact.AliasOK {
			p.Reportf(fd.Name.Pos(), "%s declares both //machlint:noalias and //machlint:aliasok; pick one contract", fd.Name.Name)
		}
		if fact.AliasOK && fact.AliasReason == "" {
			p.Reportf(fd.Name.Pos(), "//machlint:aliasok on %s needs a justification explaining why aliasing is safe", fd.Name.Name)
		}
		for _, group := range fact.NoAliasGroups {
			if len(group) < 2 {
				p.Reportf(fd.Name.Pos(), "//machlint:noalias group %q on %s needs at least two parameter names", strings.Join(group, ","), fd.Name.Name)
			}
			for _, name := range group {
				if !params[name] {
					p.Reportf(fd.Name.Pos(), "//machlint:noalias on %s names unknown parameter %q", fd.Name.Name, name)
				}
			}
		}
	}
	if !strings.HasSuffix(fd.Name.Name, "Into") || fact.Annotated() {
		return
	}
	if a, b, ok := p.aliasPronePair(fd); ok {
		p.Reportf(fd.Name.Pos(), "%s writes into a caller-owned buffer but declares no aliasing contract for its overlapping-capable parameters (%s, %s); add //machlint:noalias or a justified //machlint:aliasok", fd.Name.Name, a, b)
	}
}

// paramNames returns the declared parameter names of a function.
func paramNames(fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			out[name.Name] = true
		}
	}
	return out
}

// aliasPronePair returns the first parameter pair whose types could
// overlap in memory: identical slice element types or identical pointer
// targets. Receivers are not considered.
func (p *Pass) aliasPronePair(fd *ast.FuncDecl) (a, b string, ok bool) {
	type param struct {
		name string
		typ  types.Type
	}
	var params []param
	if fd.Type.Params == nil {
		return "", "", false
	}
	for _, field := range fd.Type.Params.List {
		t := p.TypeOf(field.Type)
		if t == nil {
			continue
		}
		for _, name := range field.Names {
			params = append(params, param{name.Name, t})
		}
	}
	for i := 0; i < len(params); i++ {
		for j := i + 1; j < len(params); j++ {
			if typesMayOverlap(params[i].typ, params[j].typ) {
				return params[i].name, params[j].name, true
			}
		}
	}
	return "", "", false
}

func typesMayOverlap(a, b types.Type) bool {
	if sa, ok := a.Underlying().(*types.Slice); ok {
		if sb, ok := b.Underlying().(*types.Slice); ok {
			return types.Identical(sa.Elem(), sb.Elem())
		}
	}
	if pa, ok := a.Underlying().(*types.Pointer); ok {
		if pb, ok := b.Underlying().(*types.Pointer); ok {
			return types.Identical(pa.Elem(), pb.Elem())
		}
	}
	return false
}

// checkIntoCall verifies the noalias groups of the callee (resolved
// through the cross-unit fact index) against the actual arguments.
func (p *Pass) checkIntoCall(call *ast.CallExpr) {
	fn := calleeFunc(p, call)
	if fn == nil {
		return
	}
	fact := p.Facts.ByFunc(p.Fset, fn.Pos())
	if fact == nil || len(fact.NoAliasGroups) == 0 {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	idx := map[string]int{}
	for i := 0; i < sig.Params().Len(); i++ {
		idx[sig.Params().At(i).Name()] = i
	}
	argFor := func(name string) ast.Expr {
		i, ok := idx[name]
		if !ok || i >= len(call.Args) {
			return nil
		}
		if sig.Variadic() && i == sig.Params().Len()-1 {
			return nil // variadic tails are out of scope
		}
		return call.Args[i]
	}
	for _, group := range fact.NoAliasGroups {
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				a, b := argFor(group[i]), argFor(group[j])
				if a == nil || b == nil {
					continue
				}
				if exprsMayAlias(p, a, b) {
					p.Reportf(b.Pos(), "arguments for %q and %q of %s may alias the same storage; %s declares them //machlint:noalias", group[i], group[j], fn.Name(), fn.Name())
				}
			}
		}
	}
}

// exprsMayAlias reports whether two argument expressions can refer to
// overlapping storage: same root variable, one access path a prefix of
// the other. Unresolvable roots (call results, literals) never alias.
func exprsMayAlias(p *Pass, a, b ast.Expr) bool {
	objA, pathA, okA := aliasChain(p, a)
	objB, pathB, okB := aliasChain(p, b)
	if !okA || !okB || objA != objB {
		return false
	}
	return pathPrefix(pathA, pathB) || pathPrefix(pathB, pathA)
}

// pathPrefix reports whether a is b or a segment-boundary prefix of b.
func pathPrefix(a, b string) bool {
	return a == b || strings.HasPrefix(b, a+".")
}

// aliasChain resolves an expression to (root variable, access path).
// Slicing, indexing, dereferencing and address-taking stay within the same
// storage and are stripped; selectors extend the path.
func aliasChain(p *Pass, e ast.Expr) (types.Object, string, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op.String() != "&" {
				return nil, "", false
			}
			e = x.X
		case *ast.Ident:
			obj := p.ObjectOf(x)
			if _, ok := obj.(*types.Var); !ok {
				return nil, "", false
			}
			return obj, x.Name, true
		case *ast.SelectorExpr:
			// Package-qualified variable: the selected object is the root.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := p.ObjectOf(id).(*types.PkgName); isPkg {
					obj := p.ObjectOf(x.Sel)
					if _, ok := obj.(*types.Var); !ok {
						return nil, "", false
					}
					return obj, x.Sel.Name, true
				}
			}
			obj, path, ok := aliasChain(p, x.X)
			if !ok {
				return nil, "", false
			}
			return obj, path + "." + x.Sel.Name, true
		default:
			return nil, "", false
		}
	}
}
