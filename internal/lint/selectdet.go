package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SelectDet flags the two channel patterns whose observable behavior
// depends on the goroutine scheduler, which the simulation core must never
// let leak into results (DESIGN.md §5: parallel phases emit in serial
// order):
//
//  1. A select with two or more communication cases: when several cases
//     are ready, Go picks one pseudorandomly, so any state change in a
//     case body is scheduler-dependent.
//  2. Unordered channel fan-in: a channel sent to by goroutines spawned in
//     a loop, or by more than one spawned goroutine, delivers values in
//     arrival order. The sanctioned shape is an indexed result slice
//     (each goroutine writes its own slot) reduced serially — exactly how
//     the decide/finalize phases and the fed estimate fan-out work.
var SelectDet = &Analyzer{
	Name: "selectdet",
	Doc:  "scheduler-ordered select or unordered channel fan-in in the simulation core",
	Run:  runSelectDet,
}

func runSelectDet(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectStmt:
				comm := 0
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					p.Reportf(n.Select, "select with %d communication cases resolves ready races pseudorandomly; restructure around a single deterministic source or justify with //machlint:allow selectdet", comm)
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					p.checkChannelFanIn(n.Body)
				}
			}
			return true
		})
	}
}

// chanSend records one send statement inside a spawned goroutine.
type chanSend struct {
	pos     token.Pos
	inLoop  bool
	loop    ast.Node // innermost loop enclosing the spawn, when inLoop
	spawn   ast.Node // the go statement / spawner call
	chanObj types.Object
}

// checkChannelFanIn finds channels that receive sends from goroutines
// spawned in a loop or from multiple distinct spawned goroutines.
func (p *Pass) checkChannelFanIn(body *ast.BlockStmt) {
	var (
		stack     []ast.Node
		loopStack []ast.Node
		sends     []chanSend
	)
	collectSends := func(lit *ast.FuncLit, spawn ast.Node) {
		var loop ast.Node
		if len(loopStack) > 0 {
			loop = loopStack[len(loopStack)-1]
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			obj, _, ok := aliasChain(p, send.Chan)
			if !ok {
				return true
			}
			sends = append(sends, chanSend{
				pos:     send.Arrow,
				inLoop:  loop != nil,
				loop:    loop,
				spawn:   spawn,
				chanObj: obj,
			})
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			switch top.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loopStack = loopStack[:len(loopStack)-1]
			}
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopStack = append(loopStack, n)
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				collectSends(lit, n)
			}
		case *ast.CallExpr:
			if spawnerKind(p, n) != spawnNone {
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						collectSends(lit, n)
					}
				}
			}
		}
		return true
	})

	firstSpawn := map[types.Object]ast.Node{}
	for _, s := range sends {
		// A goroutine spawned in a loop sending on a channel declared
		// outside that loop fans many producers into one consumer.
		if s.inLoop && !within(s.chanObj.Pos(), s.loop) {
			p.Reportf(s.pos, "channel %s collects sends from goroutines spawned in a loop; arrival order is scheduler-dependent — write into an indexed slice and reduce in order, or justify with //machlint:allow selectdet", s.chanObj.Name())
			continue
		}
		if prev, ok := firstSpawn[s.chanObj]; ok && prev != s.spawn {
			p.Reportf(s.pos, "channel %s is sent to from more than one spawned goroutine; arrival order is scheduler-dependent — write into an indexed slice and reduce in order, or justify with //machlint:allow selectdet", s.chanObj.Name())
			continue
		}
		firstSpawn[s.chanObj] = s.spawn
	}
}

// within reports whether pos falls inside node's source extent.
func within(pos token.Pos, node ast.Node) bool {
	return node != nil && pos >= node.Pos() && pos <= node.End()
}
