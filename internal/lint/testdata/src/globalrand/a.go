// Package fixture exercises the globalrand analyzer: global math/rand
// draws and wall-clock reads are hazards; seeded sources, constructors and
// non-clock time functions are not.
package fixture

import (
	"math/rand"
	"time"
)

func hazards() time.Duration {
	_ = rand.Intn(10)  // want "shared global source"
	_ = rand.Float64() // want "shared global source"
	rand.Shuffle(3, func(i, j int) {}) // want "shared global source"
	start := time.Now()                // want "wall-clock read"
	_ = time.Now()                     // want "wall-clock read"
	return time.Since(start)           // want "wall-clock read"
}

func fine(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // constructors build explicit state
	v := r.Float64()                    // methods on a seeded source
	var rng *rand.Rand                  // type references
	_ = rng
	d := 3 * time.Second // constants and types
	t := time.Unix(0, 0) // non-clock time functions
	_ = t.Add(d)
	return v
}

func waived() time.Time {
	return time.Now() //machlint:allow globalrand boot-time stamp for logs, never enters simulation state
}
