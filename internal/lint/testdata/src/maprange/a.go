// Package fixture exercises the maprange analyzer: positives, negatives,
// and suppression. `// want "rx"` comments are matched by the test harness.
package fixture

import "net/rpc"

func floatAccumulation(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "accumulates floating-point"
		total += v
	}
	sum := 0.0
	for _, v := range m { // want "accumulates floating-point"
		sum = sum + v
	}
	counts := map[int]float64{}
	src := map[int]int{1: 2, 3: 4}
	for k := range src { // want "accumulates floating-point"
		counts[k]++
	}
	return total + sum
}

func sliceAppend(m map[string]float64) []string {
	var keys []string
	for k := range m { // want "appends to a slice"
		keys = append(keys, k)
	}
	return keys
}

func closureHazard(m map[string]float64) float64 {
	total := 0.0
	add := func(v float64) { total += v }
	for _, v := range m { // want "accumulates floating-point"
		add(v)
		_ = func() { total += v }
	}
	return total
}

func rpcDispatch(clients map[string]*rpc.Client) {
	for addr, c := range clients { // want "issues RPCs"
		_ = c.Call(addr, nil, nil)
	}
}

func negatives(m map[string]float64, ints map[string]int) int {
	n := 0
	for range m { // integer counting is order-blind
		n++
	}
	for k, v := range m { // independent per-key writes are order-blind
		ints[k] = int(v)
	}
	total := 0.0
	for _, v := range []float64{1, 2} { // slice ranges are ordered
		total += v
	}
	var keys []string
	for _, s := range []string{"a", "b"} {
		keys = append(keys, s)
	}
	for _, c := range map[string]*rpc.Client{} { // non-Call methods are fine
		defer c.Close()
	}
	return n + int(total) + len(keys)
}

func suppressed(m map[string]float64) []string {
	var keys []string
	//machlint:allow maprange keys are sorted by the caller before use
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func unjustifiedSuppression(m map[string]float64) []string {
	var keys []string
	/* want "no justification" */ //machlint:allow maprange
	for k := range m { // want "appends to a slice"
		keys = append(keys, k)
	}
	return keys
}
