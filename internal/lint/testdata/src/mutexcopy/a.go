// Package fixture exercises the mutexcopy analyzer: by-value lock copies
// at parameters, receivers and range clauses are hazards; pointers and
// index-based ranges are not.
package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

type wrapper struct{ g guarded } // locks found transitively

type counter struct{ wg sync.WaitGroup }

func byValueParam(g guarded) int { return g.n } // want "by value"

func byValueWaitGroup(c counter) { _ = c } // want "by value"

func pointerParam(g *guarded) int { return g.n }

func (g guarded) valueReceiver() int { return g.n } // want "by value"

func (g *guarded) pointerReceiver() int { return g.n }

func rangeCopies(gs []guarded, ws []wrapper) int {
	total := 0
	for _, g := range gs { // want "range value copies"
		total += g.n
	}
	for _, w := range ws { // want "range value copies"
		total += w.g.n
	}
	for i := range gs { // index ranges never copy
		total += gs[i].n
	}
	for _, p := range []*guarded{} { // pointers break the copy chain
		total += p.n
	}
	return total
}

func closureParam() {
	f := func(g guarded) int { return g.n } // want "by value"
	_ = f
}

func waived(g guarded) int { //machlint:allow mutexcopy fixture copies a never-locked zero value on purpose
	return g.n
}
