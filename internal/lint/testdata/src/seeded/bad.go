// Package seeded exists to prove the machlint pipeline exits nonzero:
// every check in the suite has at least one live violation below. It is
// loaded only by internal/lint tests — `machlint ./...` skips testdata
// directories while walking patterns.
package seeded

import (
	"math/rand"
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

func mayFail() error { return nil }

func violations(m map[string]float64, g guarded) float64 { // mutexcopy
	total := 0.0
	for _, v := range m { // maprange
		total += v
	}
	if total == 0.5 { // floateq
		total = rand.Float64() // globalrand
	}
	mayFail()                                 // errdrop
	total += float64(time.Now().Nanosecond()) // walltime
	return total + float64(g.n)
}

func moreViolations() int {
	r := rand.New(rand.NewSource(42)) // randshare: constant seed
	out := make(chan int)
	go func() { out <- r.Intn(10) }()
	go func() { out <- r.Intn(10) }() // randshare: shared stream; selectdet: two producers
	return <-out + <-out
}

func copyInto(dst, src []float64) { // intoalias: no aliasing contract
	copy(dst, src)
}
