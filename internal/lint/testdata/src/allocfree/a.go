// Package allocfixture exercises the allocfree escape-analysis check. It
// must compile (not just type-check): the driver runs the real compiler
// over it with -gcflags=-m.
package allocfixture

var sink []float64

// SumInPlace is a steady-state hot path: no heap allocations.
//
//machlint:allocfree
func SumInPlace(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}

// LeakyAppend allocates on every call: the buffer escapes into the global
// sink. Its budget entry commits to exactly one allocation site.
//
//machlint:allocfree
func LeakyAppend(n int) {
	buf := make([]float64, n)
	for i := range buf {
		buf[i] = float64(i)
	}
	sink = buf
}

// Unannotated allocates freely; without the directive the check ignores it.
func Unannotated(n int) []float64 {
	return make([]float64, n)
}
