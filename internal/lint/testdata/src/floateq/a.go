// Package fixture exercises the floateq analyzer: exact float comparisons
// are hazards unless justified; integer and string comparisons are not.
package fixture

func compare(a float64, b float32, eps float64) bool {
	if a == 2.0 { // want "exact floating-point =="
		return true
	}
	if b != 0 { // want "exact floating-point !="
		return false
	}
	const half = 0.5
	bad := a != half // want "exact floating-point !="
	_ = bad

	n := 3
	if n == 3 { // integers compare exactly
		n++
	}
	s := "x"
	if s == "x" { // strings too
		s = ""
	}
	if a-eps < half && half < a+eps { // tolerance comparison is the fix
		return true
	}
	//machlint:allow floateq exact zero is a sentinel here, never a computed value
	return a == 0
}

func unjustified(a float64) bool {
	/* want "no justification" */ //machlint:allow floateq
	return a == 1 // want "exact floating-point =="
}

func switches(a float64, b float32, n int) int {
	switch a { // want "switch on a floating-point tag"
	case 1.0:
		return 1
	}
	switch b { // want "switch on a floating-point tag"
	case 0:
		return 2
	}
	switch n { // integer tags compare exactly
	case 3:
		return 3
	}
	switch { // tagless switch: arms are checked as ordinary expressions
	case a > 0.5:
		return 4
	case b == 2: // want "exact floating-point =="
		return 5
	}
	//machlint:allow floateq tag takes discrete sentinel values only
	switch a {
	case -1:
		return 6
	}
	return 0
}
