// Package fixture exercises the floateq analyzer: exact float comparisons
// are hazards unless justified; integer and string comparisons are not.
package fixture

func compare(a float64, b float32, eps float64) bool {
	if a == 2.0 { // want "exact floating-point =="
		return true
	}
	if b != 0 { // want "exact floating-point !="
		return false
	}
	const half = 0.5
	bad := a != half // want "exact floating-point !="
	_ = bad

	n := 3
	if n == 3 { // integers compare exactly
		n++
	}
	s := "x"
	if s == "x" { // strings too
		s = ""
	}
	if a-eps < half && half < a+eps { // tolerance comparison is the fix
		return true
	}
	//machlint:allow floateq exact zero is a sentinel here, never a computed value
	return a == 0
}

func unjustified(a float64) bool {
	//machlint:allow floateq
	return a == 1 // want "exact floating-point =="
}
