// Package fixture exercises the errdrop analyzer: ignored and
// blank-discarded errors are hazards; handled errors, allowlisted callees
// and justified waivers are not.
package fixture

import (
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return nil }

func multi() (int, error) { return 0, nil }

func ignored(f *os.File) {
	mayFail()       // want "ignored"
	_ = mayFail()   // want "discarded into _"
	n, _ := multi() // want "discarded into _"
	_ = n
	defer f.Close() // want "ignored"
	go mayFail()    // want "ignored"
}

func handled(sb *strings.Builder) error {
	fmt.Println("reports never fail actionably") // allowlisted
	fmt.Fprintf(os.Stderr, "nor does stderr\n")  // allowlisted
	sb.WriteString("documented to never fail")   // allowlisted
	if err := mayFail(); err != nil {
		return err
	}
	n, err := multi() // both results bound
	_ = n
	return err
}

func waived() {
	_ = mayFail() //machlint:allow errdrop best-effort call; failure is harmless in this fixture
}

func unjustified() {
	/* want "no justification" */ //machlint:allow errdrop
	_ = mayFail() // want "discarded into _"
}
