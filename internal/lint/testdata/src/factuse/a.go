// Package factuse calls an annotated function from another package. It
// exists to prove cross-unit fact propagation: the //machlint:noalias
// contract on tensor.MatMulInto is declared in internal/tensor, and the
// violation below can only be found if the driver carried that fact across
// package boundaries.
package factuse

import "github.com/mach-fl/mach/internal/tensor"

func inPlaceProduct(x, y *tensor.Tensor) {
	tensor.MatMulInto(x, x, y) // dst aliases a: forbidden by the callee's contract
}
