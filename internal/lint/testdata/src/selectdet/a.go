// Package selectdet exercises the selectdet analyzer: multi-case selects
// and unordered channel fan-in.
package selectdet

func twoCase(a, b chan int) int {
	select { // want "select with 2 communication cases"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func defaultClean(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}

func fanInLoop(n int) int {
	out := make(chan int)
	for i := 0; i < n; i++ {
		go func() {
			out <- i // want "spawned in a loop"
		}()
	}
	total := 0
	for j := 0; j < n; j++ {
		total += <-out
	}
	return total
}

func twoProducers() int {
	out := make(chan int)
	go func() { out <- 1 }()
	go func() { out <- 2 }() // want "more than one spawned goroutine"
	return <-out + <-out
}

// singleProducerClean has one goroutine feeding one consumer: delivery
// order is the send order, not a scheduler race.
func singleProducerClean(n int) int {
	out := make(chan int)
	go func() {
		sum := 0
		for i := 0; i < n; i++ {
			sum += i
		}
		out <- sum
	}()
	return <-out
}

// perIterationClean re-makes the channel each iteration, so each spawn has
// exactly one producer and one consumer.
func perIterationClean(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		done := make(chan int)
		go func() { done <- i }()
		total += <-done
	}
	return total
}

func suppressed(a, b chan int) int {
	//machlint:allow selectdet fixture pins that a justified waiver silences the finding
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
