// Package fixture exercises the walltime analyzer: direct wall-clock reads
// are hazards; constants, types, non-clock time functions and methods on
// time values are not.
package fixture

import "time"

func hazards() time.Duration {
	start := time.Now()      // want "wall-clock read"
	_ = time.Now()           // want "wall-clock read"
	_ = time.Until(start)    // want "wall-clock read"
	return time.Since(start) // want "wall-clock read"
}

func fine() time.Duration {
	d := 3 * time.Second // constants and types
	t := time.Unix(0, 0) // non-clock time functions
	u := t.Add(d)        // methods on time values
	return u.Sub(t)
}

func waived() time.Time {
	return time.Now() //machlint:allow walltime process-start anchor, taken once before any simulation state exists
}
