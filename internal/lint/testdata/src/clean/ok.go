// Package clean is the zero-findings fixture for machlint's exit-code
// contract: linting it must return success.
package clean

// Sum adds the values in order; slice iteration is deterministic.
func Sum(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}
