// Package stalesup carries a justified suppression that waives nothing.
// The runner's staleness audit must flag it.
package stalesup

func id(x int) int {
	//machlint:allow floateq fixture: deliberately unused waiver
	return x
}
