// Package randshare exercises the randshare analyzer: constant seeds and
// *rand.Rand streams shared across goroutine boundaries.
package randshare

import (
	"math/rand"
	"sync"

	"github.com/mach-fl/mach/internal/parallel"
)

// mix stands in for the repo's seed-derivation helper.
func mix(parts ...int64) int64 {
	h := int64(1469598103934665603)
	for _, p := range parts {
		h ^= p
		h *= 1099511628211
	}
	return h
}

func constSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want "seeded with constant 42"
}

func constReseed(r *rand.Rand) {
	r.Seed(7) // want "seeded with constant 7"
}

func derivedSeedClean(seed int64, t int) *rand.Rand {
	return rand.New(rand.NewSource(mix(seed, int64(t))))
}

func sharedByTwoGoroutines(seed int64) {
	r := rand.New(rand.NewSource(mix(seed)))
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _ = r.Int63() }()
	go func() { defer wg.Done(); _ = r.Int63() }() // want "more than one goroutine-spawning closure"
	wg.Wait()
}

func parentUseAfterSpawn(seed int64) int64 {
	r := rand.New(rand.NewSource(mix(seed)))
	done := make(chan struct{})
	go func() { _ = r.Int63(); close(done) }() // want "parent scope after the spawn"
	v := r.Int63()
	<-done
	return v
}

func spawnInLoop(seed int64, n int) {
	r := rand.New(rand.NewSource(mix(seed)))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); _ = r.Int63() }() // want "multiple goroutines"
	}
	wg.Wait()
}

func forEachCapture(seed int64, n int) {
	r := rand.New(rand.NewSource(mix(seed)))
	parallel.ForEach(2, n, func(i int) {
		_ = r.Int63() // want "multiple goroutines"
	})
}

// handOffClean seeds on the parent goroutine, then hands the stream off
// completely: every parent use is lexically before the spawn.
func handOffClean(seed int64) {
	r := rand.New(rand.NewSource(mix(seed)))
	r.Seed(mix(seed, 1))
	done := make(chan struct{})
	go func() { _ = r.Int63(); close(done) }()
	<-done
}

// perWorkerClean gives each pool task its own derived stream.
func perWorkerClean(seed int64) {
	p := parallel.NewPool(2)
	defer p.Close()
	g := p.Group()
	r0 := rand.New(rand.NewSource(mix(seed, 0)))
	r1 := rand.New(rand.NewSource(mix(seed, 1)))
	g.Go(func() { _ = r0.Int63() })
	g.Go(func() { _ = r1.Int63() })
	g.Wait()
}

func suppressed() *rand.Rand {
	//machlint:allow randshare fixture pins that a justified waiver silences the finding
	return rand.New(rand.NewSource(99))
}
