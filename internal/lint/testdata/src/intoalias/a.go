// Package intoalias exercises the intoalias analyzer: mandatory contracts
// on *Into buffer functions, annotation validity, and call-site may-alias
// checking.
package intoalias

type state struct {
	buf []float64
	alt []float64
}

// AddInto writes a[i]+b[i] into dst[i]; dst must not overlap either input.
//
//machlint:noalias dst,a dst,b
func AddInto(dst, a, b []float64) {
	for i := range a {
		dst[i] = a[i] + b[i]
	}
}

// ScaleInto tolerates aliasing by construction.
//
//machlint:aliasok element i is fully read before element i is written; no cross-element reads
func ScaleInto(dst, src []float64, k float64) {
	for i := range src {
		dst[i] = src[i] * k
	}
}

func missingContractInto(dst, src []float64) { // want "declares no aliasing contract"
	for i := range src {
		dst[i] = src[i]
	}
}

//machlint:noalias dst,nosuch
func badParamInto(dst, src []float64) { // want "unknown parameter"
	copy(dst, src)
}

//machlint:aliasok
func bareAliasOKInto(dst, src []float64) { // want "needs a justification"
	copy(dst, src)
}

//machlint:noalias dst,src
//machlint:aliasok reads everything before writing anything
func conflictedInto(dst, src []float64) { // want "declares both"
	copy(dst, src)
}

//machlint:noalias dst
func shortGroupInto(dst, src []float64) { // want "at least two parameter names"
	copy(dst, src)
}

func callSites(s *state) {
	a := make([]float64, 8)
	b := make([]float64, 8)
	AddInto(a, b, b)             // clean: the a,b inputs may alias each other (A·A style)
	AddInto(a, a, b)             // want "may alias"
	AddInto(s.buf, s.alt, s.buf) // want "may alias"
	AddInto(a[2:], b, a)         // want "may alias"
	AddInto(s.alt, s.buf, s.buf) // clean: dst is distinct storage
	ScaleInto(a, a, 2)           // clean: aliasok tolerates in-place use
	//machlint:allow intoalias fixture pins that a justified waiver silences the finding
	AddInto(b, b, a)
}
