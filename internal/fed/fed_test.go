package fed

import (
	"fmt"
	"math"
	"math/rand"
	"net/rpc"
	"testing"

	"github.com/mach-fl/mach/internal/codec"
	"github.com/mach-fl/mach/internal/dataset"
	"github.com/mach-fl/mach/internal/hfl"
	"github.com/mach-fl/mach/internal/metrics"
	"github.com/mach-fl/mach/internal/mobility"
	"github.com/mach-fl/mach/internal/nn"
	"github.com/mach-fl/mach/internal/sampling"
	"github.com/mach-fl/mach/internal/telemetry"
)

func testArch(rng *rand.Rand) (*nn.Network, error) {
	return nn.NewMLP("fed-test", 16, []int{8}, 10, rng), nil
}

// deployment spins up a full in-process cluster on loopback TCP: `hosts`
// device hosts splitting the device population, `edges` edge servers, and a
// cloud driving the run under the given wire format.
type deployment struct {
	cloud   *Cloud
	devices []*DeviceServer
	edges   []*EdgeServer
}

func (d *deployment) close() {
	if d.cloud != nil {
		d.cloud.Close()
	}
	for _, e := range d.edges {
		e.Close()
	}
	for _, s := range d.devices {
		s.Close()
	}
}

func deploy(t *testing.T, devices, edges, steps, hosts int, scheme codec.Scheme) *deployment {
	t.Helper()
	task, err := dataset.NewTask(dataset.MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := dataset.Partition(task, dataset.PartitionConfig{
		Devices: devices, SamplesPerDevice: 40, TailRatio: 0.4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	test, err := task.Generate(rand.New(rand.NewSource(2)), 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := mobility.GenerateSchedule(3, edges, devices, steps, 3)
	if err != nil {
		t.Fatal(err)
	}

	d := &deployment{}
	machCfg := sampling.DefaultMACHConfig()

	// Device hosts splitting the population into contiguous ranges.
	table := map[int]string{}
	for h := 0; h < hosts; h++ {
		data := map[int]*dataset.Dataset{}
		for m := h * devices / hosts; m < (h+1)*devices/hosts; m++ {
			data[m] = parts[m]
		}
		srv, err := NewDeviceServer(testArch, data, machCfg, int64(100+h))
		if err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		d.devices = append(d.devices, srv)
		for m := range data {
			table[m] = addr
		}
	}

	hyper := Hyper{LocalEpochs: 2, BatchSize: 4, LearningRate: 0.05}
	rng := rand.New(rand.NewSource(4))
	base, err := testArch(rng)
	if err != nil {
		t.Fatal(err)
	}
	var edgeAddrs []string
	for n := 0; n < edges; n++ {
		e, err := NewEdgeServer(n, machCfg, hyper, 5, StaticResolver(table), base.ParamVector())
		if err != nil {
			t.Fatal(err)
		}
		addr, err := e.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		d.edges = append(d.edges, e)
		edgeAddrs = append(edgeAddrs, addr)
	}

	var hostAddrs []string
	for _, s := range d.devices {
		hostAddrs = append(hostAddrs, s.listener.Addr().String())
	}
	cloud, err := NewCloud(CloudConfig{
		Steps: steps, CloudInterval: 5, Participation: 0.5, EvalEvery: 5, Seed: 6,
		Codec: scheme,
	}, testArch, sched, test, edgeAddrs, hostAddrs)
	if err != nil {
		t.Fatal(err)
	}
	d.cloud = cloud
	return d
}

func TestDistributedTrainingLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("full 30-step deployment is not short")
	}
	d := deploy(t, 8, 2, 30, 2, codec.SchemeDelta)
	defer d.close()
	hist, err := d.cloud.Run()
	if err != nil {
		t.Fatal(err)
	}
	if hist.Len() == 0 {
		t.Fatal("no evaluations")
	}
	if hist.FinalAccuracy() < 0.3 {
		t.Fatalf("distributed run failed to learn: final accuracy %.3f", hist.FinalAccuracy())
	}
	if len(d.cloud.GlobalParams()) == 0 {
		t.Fatal("empty global model")
	}
}

func TestDeviceServerRPCs(t *testing.T) {
	task, err := dataset.NewTask(dataset.MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	data, err := task.Generate(rand.New(rand.NewSource(1)), 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewDeviceServer(testArch, map[int]*dataset.Dataset{3: data}, sampling.DefaultMACHConfig(), 9)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var ping PingReply
	if err := client.Call("Device.Ping", PingArgs{}, &ping); err != nil {
		t.Fatal(err)
	}
	if ping.Role != "device-host" {
		t.Fatalf("role %q", ping.Role)
	}

	// Estimate before any training: pure exploration score.
	var est EstimateReply
	if err := client.Call("Device.Estimate", EstimateArgs{Step: 10, Devices: []int{3}}, &est); err != nil {
		t.Fatal(err)
	}
	if len(est.Estimates) != 1 || est.Estimates[0] <= 0 {
		t.Fatalf("estimates %v", est.Estimates)
	}
	// Unknown device errors.
	if err := client.Call("Device.Estimate", EstimateArgs{Step: 10, Devices: []int{99}}, &est); err == nil {
		t.Fatal("expected error for unknown device")
	}

	// Train round-trip: returns params and I gradient norms, and the
	// experience changes the estimate after a cloud round.
	rng := rand.New(rand.NewSource(2))
	base, err := testArch(rng)
	if err != nil {
		t.Fatal(err)
	}
	var tr TrainReply
	args := TrainArgs{
		Step: 0, Device: 3, Params: base.ParamVector(),
		Hyper: Hyper{LocalEpochs: 3, BatchSize: 4, LearningRate: 0.1},
	}
	if err := client.Call("Device.Train", args, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.SqNorms) != 3 {
		t.Fatalf("%d gradient norms, want 3", len(tr.SqNorms))
	}
	if len(tr.Params) != len(args.Params) {
		t.Fatal("parameter length changed")
	}
	changed := false
	for i := range tr.Params {
		if tr.Params[i] != args.Params[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("training did not change the model")
	}
	var cr CloudRoundReply
	if err := client.Call("Device.CloudRound", CloudRoundArgs{Step: 1}, &cr); err != nil {
		t.Fatal(err)
	}

	// Bad hyperparameters are rejected.
	bad := args
	bad.Hyper.BatchSize = 0
	if err := client.Call("Device.Train", bad, &tr); err == nil {
		t.Fatal("expected error for invalid hyperparameters")
	}

	// Class distributions round-trip.
	var cd ClassDistReply
	if err := client.Call("Device.ClassDist", ClassDistArgs{Devices: []int{3}}, &cd); err != nil {
		t.Fatal(err)
	}
	if len(cd.Distributions) != 1 || len(cd.Distributions[0]) != 10 {
		t.Fatalf("class distributions %v", cd.Distributions)
	}
}

func TestEdgeServerValidation(t *testing.T) {
	if _, err := NewEdgeServer(0, sampling.DefaultMACHConfig(), Hyper{}, 1, nil, nil); err == nil {
		t.Fatal("expected error for nil resolver")
	}
	bad := sampling.DefaultMACHConfig()
	bad.Alpha = 5
	if _, err := NewEdgeServer(0, bad, Hyper{}, 1, StaticResolver(nil), nil); err == nil {
		t.Fatal("expected error for invalid MACH config")
	}
	res := StaticResolver(map[int]string{1: "addr"})
	if _, err := res(2); err == nil {
		t.Fatal("expected resolver miss")
	}
}

func TestCloudConfigValidation(t *testing.T) {
	valid := CloudConfig{Steps: 10, CloudInterval: 5, Participation: 0.5}
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*CloudConfig)
	}{
		{"zero steps", func(c *CloudConfig) { c.Steps = 0 }},
		{"zero interval", func(c *CloudConfig) { c.CloudInterval = 0 }},
		{"participation", func(c *CloudConfig) { c.Participation = 0 }},
		{"negative eval", func(c *CloudConfig) { c.EvalEvery = -1 }},
		{"bad codec", func(c *CloudConfig) { c.Codec = codec.Scheme(99) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := valid
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestNewDeviceServerValidation(t *testing.T) {
	if _, err := NewDeviceServer(testArch, nil, sampling.DefaultMACHConfig(), 1); err == nil {
		t.Fatal("expected error for empty device map")
	}
	empty := dataset.NewDataset("empty", 1, 4, 4, 10)
	if _, err := NewDeviceServer(testArch, map[int]*dataset.Dataset{0: empty}, sampling.DefaultMACHConfig(), 1); err == nil {
		t.Fatal("expected error for empty dataset")
	}
}

func TestEdgeStepFailsOnDeadDeviceHost(t *testing.T) {
	base, err := testArch(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Resolver points at a port nothing listens on.
	e, err := NewEdgeServer(0, sampling.DefaultMACHConfig(),
		Hyper{LocalEpochs: 1, BatchSize: 2, LearningRate: 0.1}, 1,
		StaticResolver(map[int]string{0: "127.0.0.1:1"}), base.ParamVector())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var rep EdgeStepReply
	if err := e.Step(EdgeStepArgs{Step: 0, Members: []int{0}, Capacity: 1}, &rep); err == nil {
		t.Fatal("expected dial error for dead device host")
	}
}

func TestTrainRejectsWrongParameterLength(t *testing.T) {
	task, err := dataset.NewTask(dataset.MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	data, err := task.Generate(rand.New(rand.NewSource(1)), 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewDeviceServer(testArch, map[int]*dataset.Dataset{0: data}, sampling.DefaultMACHConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var tr TrainReply
	err = client.Call("Device.Train", TrainArgs{
		Device: 0, Params: []float64{1, 2, 3},
		Hyper: Hyper{LocalEpochs: 1, BatchSize: 2, LearningRate: 0.1},
	}, &tr)
	if err == nil {
		t.Fatal("expected parameter-length error over RPC")
	}
}

func TestEdgeStepEmptyMembersKeepsModel(t *testing.T) {
	base, err := testArch(rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	params := base.ParamVector()
	e, err := NewEdgeServer(0, sampling.DefaultMACHConfig(),
		Hyper{LocalEpochs: 1, BatchSize: 2, LearningRate: 0.1}, 1,
		StaticResolver(nil), params)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Raw format: the reply carries the unchanged vector directly.
	var rep EdgeStepReply
	if err := e.Step(EdgeStepArgs{Step: 3, Members: nil, Capacity: 2, Scheme: codec.SchemeRaw}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Sampled != 0 || len(rep.Params) != len(params) {
		t.Fatalf("empty edge step changed state: sampled=%d", rep.Sampled)
	}
	for i := range params {
		if rep.Params[i] != params[i] {
			t.Fatal("edge model changed without participants")
		}
	}

	// Codec format: the model only travels when asked for, as a blob.
	rep = EdgeStepReply{}
	if err := e.Step(EdgeStepArgs{Step: 4, Members: nil, Capacity: 2}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.HasModel || rep.Params != nil {
		t.Fatal("codec edge step shipped a model nobody asked for")
	}
	rep = EdgeStepReply{}
	if err := e.Step(EdgeStepArgs{Step: 5, Members: nil, Capacity: 2, WantModel: true}, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.HasModel {
		t.Fatal("codec edge step did not return the requested model")
	}
	got, err := codec.Decode(rep.Model, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range params {
		if math.Float64bits(got[i]) != math.Float64bits(params[i]) {
			t.Fatal("decoded edge model differs from the installed parameters")
		}
	}
}

func TestNewCloudValidation(t *testing.T) {
	task, err := dataset.NewTask(dataset.MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	test, err := task.Generate(rand.New(rand.NewSource(1)), 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := mobility.GenerateSchedule(2, 2, 4, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := CloudConfig{Steps: 10, CloudInterval: 5, Participation: 0.5, Seed: 1}

	if _, err := NewCloud(cfg, testArch, nil, test, []string{"a", "b"}, nil); err == nil {
		t.Fatal("expected nil-schedule error")
	}
	if _, err := NewCloud(cfg, testArch, sched, test, []string{"only-one"}, nil); err == nil {
		t.Fatal("expected edge-count mismatch error")
	}
	long := cfg
	long.Steps = 99
	if _, err := NewCloud(long, testArch, sched, test, []string{"a", "b"}, nil); err == nil {
		t.Fatal("expected short-schedule error")
	}
	if _, err := NewCloud(cfg, testArch, sched, nil, []string{"a", "b"}, nil); err == nil {
		t.Fatal("expected empty-test error")
	}
	// Valid inputs but unreachable edge addresses: dial must fail.
	if _, err := NewCloud(cfg, testArch, sched, test, []string{"127.0.0.1:1", "127.0.0.1:1"}, nil); err == nil {
		t.Fatal("expected dial error")
	}
}

// runDeployment spins up a cluster, runs it to completion and returns the
// evaluation history, the final global model and the measured comm stats.
func runDeployment(t *testing.T, hosts int, scheme codec.Scheme, steps int) (*metrics.History, []float64, hfl.CommStats) {
	t.Helper()
	d := deploy(t, 8, 2, steps, hosts, scheme)
	defer d.close()
	hist, err := d.cloud.Run()
	if err != nil {
		t.Fatal(err)
	}
	stats, err := d.cloud.CommStats()
	if err != nil {
		t.Fatal(err)
	}
	return hist, d.cloud.GlobalParams(), stats
}

// TestDeltaCodecBitIdenticalAndCheaperThanRaw is the codec contract end to
// end: the lossless delta wire format must reproduce the raw format's
// learning trajectory bit for bit — same evaluation history, same final
// global parameters — while moving strictly fewer measured wire bytes. The
// single-host case exercises the host-side base advance (no model bytes on
// the wire between cloud rounds); the two-host case the update-sum path.
func TestDeltaCodecBitIdenticalAndCheaperThanRaw(t *testing.T) {
	for _, hosts := range []int{1, 2} {
		t.Run(fmt.Sprintf("hosts=%d", hosts), func(t *testing.T) {
			const steps = 10
			histRaw, globalRaw, commRaw := runDeployment(t, hosts, codec.SchemeRaw, steps)
			histDelta, globalDelta, commDelta := runDeployment(t, hosts, codec.SchemeDelta, steps)

			if histRaw.Len() == 0 || histRaw.Len() != histDelta.Len() {
				t.Fatalf("history lengths: raw %d, delta %d", histRaw.Len(), histDelta.Len())
			}
			for i := range histRaw.Points {
				pr, pd := histRaw.Points[i], histDelta.Points[i]
				if pr.Step != pd.Step ||
					math.Float64bits(pr.Accuracy) != math.Float64bits(pd.Accuracy) ||
					math.Float64bits(pr.Loss) != math.Float64bits(pd.Loss) {
					t.Fatalf("evaluation %d diverged: raw %+v, delta %+v", i, pr, pd)
				}
			}
			if len(globalRaw) != len(globalDelta) {
				t.Fatalf("global lengths: raw %d, delta %d", len(globalRaw), len(globalDelta))
			}
			for j := range globalRaw {
				if math.Float64bits(globalRaw[j]) != math.Float64bits(globalDelta[j]) {
					t.Fatalf("global parameter %d diverged: raw %v, delta %v", j, globalRaw[j], globalDelta[j])
				}
			}

			for _, c := range []hfl.CommStats{commRaw, commDelta} {
				if !c.Measured {
					t.Fatalf("comm stats not marked measured: %+v", c)
				}
				if c.DeviceUplinkBytes <= 0 || c.DeviceDownlinkBytes <= 0 || c.CloudBytes <= 0 {
					t.Fatalf("comm counters empty: %+v", c)
				}
			}
			rawDev := commRaw.DeviceUplinkBytes + commRaw.DeviceDownlinkBytes
			deltaDev := commDelta.DeviceUplinkBytes + commDelta.DeviceDownlinkBytes
			if deltaDev >= rawDev {
				t.Fatalf("delta device traffic %d B not below raw %d B", deltaDev, rawDev)
			}
			if commDelta.Total() >= commRaw.Total() {
				t.Fatalf("delta total %d B not below raw total %d B", commDelta.Total(), commRaw.Total())
			}
			t.Logf("hosts=%d: device bytes raw=%d delta=%d (%.1fx), total raw=%d delta=%d (%.1fx)",
				hosts, rawDev, deltaDev, float64(rawDev)/float64(deltaDev),
				commRaw.Total(), commDelta.Total(), float64(commRaw.Total())/float64(commDelta.Total()))
		})
	}
}

// TestLossySchemesStillLearn bounds the accuracy degradation of the lossy
// wire formats: a full run under float32 casting and int8 range quantization
// (with error feedback) must still clear the same accuracy bar as the
// lossless run in TestDistributedTrainingLearns.
func TestLossySchemesStillLearn(t *testing.T) {
	if testing.Short() {
		t.Skip("full 30-step deployments are not short")
	}
	for _, scheme := range []codec.Scheme{codec.SchemeFloat32, codec.SchemeInt8} {
		t.Run(scheme.String(), func(t *testing.T) {
			d := deploy(t, 8, 2, 30, 2, scheme)
			defer d.close()
			hist, err := d.cloud.Run()
			if err != nil {
				t.Fatal(err)
			}
			if hist.FinalAccuracy() < 0.3 {
				t.Fatalf("%v run degraded too far: final accuracy %.3f", scheme, hist.FinalAccuracy())
			}
		})
	}
}

// TestTrainManyUnknownBaselineOverRPC checks the baseline-cache handshake
// where it matters: across net/rpc, which flattens errors to strings. A
// TrainMany naming a base the host never saw must come back recognizable to
// isUnknownBaseline, and succeed after SetBase installs that base.
func TestTrainManyUnknownBaselineOverRPC(t *testing.T) {
	task, err := dataset.NewTask(dataset.MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	data, err := task.Generate(rand.New(rand.NewSource(1)), 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewDeviceServer(testArch, map[int]*dataset.Dataset{0: data}, sampling.DefaultMACHConfig(), 9)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	args := TrainManyArgs{
		Edge: 0, Devices: []int{0}, BaseID: 77, Scheme: codec.SchemeDelta,
		Hyper: Hyper{LocalEpochs: 1, BatchSize: 4, LearningRate: 0.05},
	}
	var rep TrainManyReply
	err = client.Call("Device.TrainMany", args, &rep)
	if err == nil {
		t.Fatal("expected unknown-baseline error")
	}
	if !isUnknownBaseline(err) {
		t.Fatalf("error %v not recognized as unknown baseline across RPC", err)
	}

	base, err := testArch(rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	params := base.ParamVector()
	blob, err := codec.Encode(codec.SchemeDelta, params, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sbRep SetBaseReply
	if err := client.Call("Device.SetBase", SetBaseArgs{Edge: 0, ID: 77, Model: blob}, &sbRep); err != nil {
		t.Fatal(err)
	}
	rep = TrainManyReply{}
	if err := client.Call("Device.TrainMany", args, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.HasSum {
		t.Fatal("TrainMany returned no update sum")
	}
	sum, err := codec.Decode(rep.Sum, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum) != len(params) {
		t.Fatalf("update sum has %d params, want %d", len(sum), len(params))
	}
	if len(rep.SqNorms) != 1 || len(rep.SqNorms[0]) != 1 {
		t.Fatalf("sqNorms %v", rep.SqNorms)
	}
}

// TestSpanStitchingAcrossRPC verifies that the span context carried in RPC
// args stitches the three tiers' span rings into one tree without any shared
// sink: each server records into its own Telemetry, yet a handler span's
// Parent equals the client span ID the caller derived on its side of the
// wire, because both ends compute the same pure hash of (kind, step, edge,
// device).
func TestSpanStitchingAcrossRPC(t *testing.T) {
	d := deploy(t, 6, 2, 6, 1, codec.SchemeDelta)
	defer d.close()

	telCloud := telemetry.New()
	telCloud.EnableSpans(true)
	d.cloud.SetTelemetry(telCloud)
	telEdge := telemetry.New()
	telEdge.EnableSpans(true)
	d.edges[0].SetTelemetry(telEdge)
	telDev := telemetry.New()
	telDev.EnableSpans(true)
	d.devices[0].SetTelemetry(telDev)

	if _, err := d.cloud.Run(); err != nil {
		t.Fatal(err)
	}

	byKind := func(spans []telemetry.SpanSnapshot, kind string) []telemetry.SpanSnapshot {
		var out []telemetry.SpanSnapshot
		for _, s := range spans {
			if s.Kind == kind {
				out = append(out, s)
			}
		}
		return out
	}

	// Cloud side: every client rpc_edge_step span hangs off its step's root
	// span and has the derived ID the edge will use as its parent.
	edgeSteps := byKind(telCloud.Spans(), "rpc_edge_step")
	if len(edgeSteps) == 0 {
		t.Fatal("cloud recorded no rpc_edge_step spans")
	}
	for _, s := range edgeSteps {
		if want := uint64(telemetry.DeriveSpanID(telemetry.SpanStep, s.Step, -1, -1)); s.Parent != want {
			t.Fatalf("rpc_edge_step step %d edge %d: parent %#x, want step span %#x", s.Step, s.Edge, s.Parent, want)
		}
		if want := uint64(telemetry.DeriveSpanID(telemetry.SpanRPCEdgeStep, s.Step, s.Edge, -1)); s.ID != want {
			t.Fatalf("rpc_edge_step step %d edge %d: id %#x, want derived %#x", s.Step, s.Edge, s.ID, want)
		}
	}

	// Edge side: the handler span's parent is the cloud's client span ID —
	// carried across the wire in EdgeStepArgs.Span, never shared in memory.
	handles := byKind(telEdge.Spans(), "handle_edge_step")
	if len(handles) == 0 {
		t.Fatal("edge recorded no handle_edge_step spans")
	}
	for _, s := range handles {
		if want := uint64(telemetry.DeriveSpanID(telemetry.SpanRPCEdgeStep, s.Step, 0, -1)); s.Parent != want {
			t.Fatalf("handle_edge_step step %d: parent %#x, want cloud rpc span %#x", s.Step, s.Parent, want)
		}
	}

	// Device side: TrainMany handlers nest under the edge's per-host client
	// span (host index 0 — the deployment has a single device host).
	trains := byKind(telDev.Spans(), "handle_train_many")
	if len(trains) == 0 {
		t.Fatal("device host recorded no handle_train_many spans")
	}
	for _, s := range trains {
		if want := uint64(telemetry.DeriveSpanID(telemetry.SpanRPCTrainMany, s.Step, s.Edge, 0)); s.Parent != want {
			t.Fatalf("handle_train_many step %d edge %d: parent %#x, want edge rpc span %#x", s.Step, s.Edge, s.Parent, want)
		}
	}
}
