package fed

import (
	"math/rand"
	"net/rpc"
	"testing"

	"github.com/mach-fl/mach/internal/dataset"
	"github.com/mach-fl/mach/internal/mobility"
	"github.com/mach-fl/mach/internal/nn"
	"github.com/mach-fl/mach/internal/sampling"
)

func testArch(rng *rand.Rand) (*nn.Network, error) {
	return nn.NewMLP("fed-test", 16, []int{8}, 10, rng), nil
}

// deployment spins up a full in-process cluster on loopback TCP: two device
// hosts splitting the device population, `edges` edge servers, and a cloud.
type deployment struct {
	cloud   *Cloud
	devices []*DeviceServer
	edges   []*EdgeServer
}

func (d *deployment) close() {
	if d.cloud != nil {
		d.cloud.Close()
	}
	for _, e := range d.edges {
		e.Close()
	}
	for _, s := range d.devices {
		s.Close()
	}
}

func deploy(t *testing.T, devices, edges, steps int) *deployment {
	t.Helper()
	task, err := dataset.NewTask(dataset.MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := dataset.Partition(task, dataset.PartitionConfig{
		Devices: devices, SamplesPerDevice: 40, TailRatio: 0.4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	test, err := task.Generate(rand.New(rand.NewSource(2)), 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := mobility.GenerateSchedule(3, edges, devices, steps, 3)
	if err != nil {
		t.Fatal(err)
	}

	d := &deployment{}
	machCfg := sampling.DefaultMACHConfig()

	// Two device hosts, splitting the population in half.
	table := map[int]string{}
	for h := 0; h < 2; h++ {
		data := map[int]*dataset.Dataset{}
		for m := h * devices / 2; m < (h+1)*devices/2; m++ {
			data[m] = parts[m]
		}
		srv, err := NewDeviceServer(testArch, data, machCfg, int64(100+h))
		if err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		d.devices = append(d.devices, srv)
		for m := range data {
			table[m] = addr
		}
	}

	hyper := Hyper{LocalEpochs: 2, BatchSize: 4, LearningRate: 0.05}
	rng := rand.New(rand.NewSource(4))
	base, err := testArch(rng)
	if err != nil {
		t.Fatal(err)
	}
	var edgeAddrs []string
	for n := 0; n < edges; n++ {
		e, err := NewEdgeServer(n, machCfg, hyper, 5, StaticResolver(table), base.ParamVector())
		if err != nil {
			t.Fatal(err)
		}
		addr, err := e.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		d.edges = append(d.edges, e)
		edgeAddrs = append(edgeAddrs, addr)
	}

	var hostAddrs []string
	for _, s := range d.devices {
		hostAddrs = append(hostAddrs, s.listener.Addr().String())
	}
	cloud, err := NewCloud(CloudConfig{
		Steps: steps, CloudInterval: 5, Participation: 0.5, EvalEvery: 5, Seed: 6,
	}, testArch, sched, test, edgeAddrs, hostAddrs)
	if err != nil {
		t.Fatal(err)
	}
	d.cloud = cloud
	return d
}

func TestDistributedTrainingLearns(t *testing.T) {
	d := deploy(t, 8, 2, 30)
	defer d.close()
	hist, err := d.cloud.Run()
	if err != nil {
		t.Fatal(err)
	}
	if hist.Len() == 0 {
		t.Fatal("no evaluations")
	}
	if hist.FinalAccuracy() < 0.3 {
		t.Fatalf("distributed run failed to learn: final accuracy %.3f", hist.FinalAccuracy())
	}
	if len(d.cloud.GlobalParams()) == 0 {
		t.Fatal("empty global model")
	}
}

func TestDeviceServerRPCs(t *testing.T) {
	task, err := dataset.NewTask(dataset.MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	data, err := task.Generate(rand.New(rand.NewSource(1)), 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewDeviceServer(testArch, map[int]*dataset.Dataset{3: data}, sampling.DefaultMACHConfig(), 9)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var ping PingReply
	if err := client.Call("Device.Ping", PingArgs{}, &ping); err != nil {
		t.Fatal(err)
	}
	if ping.Role != "device-host" {
		t.Fatalf("role %q", ping.Role)
	}

	// Estimate before any training: pure exploration score.
	var est EstimateReply
	if err := client.Call("Device.Estimate", EstimateArgs{Step: 10, Devices: []int{3}}, &est); err != nil {
		t.Fatal(err)
	}
	if len(est.Estimates) != 1 || est.Estimates[0] <= 0 {
		t.Fatalf("estimates %v", est.Estimates)
	}
	// Unknown device errors.
	if err := client.Call("Device.Estimate", EstimateArgs{Step: 10, Devices: []int{99}}, &est); err == nil {
		t.Fatal("expected error for unknown device")
	}

	// Train round-trip: returns params and I gradient norms, and the
	// experience changes the estimate after a cloud round.
	rng := rand.New(rand.NewSource(2))
	base, err := testArch(rng)
	if err != nil {
		t.Fatal(err)
	}
	var tr TrainReply
	args := TrainArgs{
		Step: 0, Device: 3, Params: base.ParamVector(),
		Hyper: Hyper{LocalEpochs: 3, BatchSize: 4, LearningRate: 0.1},
	}
	if err := client.Call("Device.Train", args, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.SqNorms) != 3 {
		t.Fatalf("%d gradient norms, want 3", len(tr.SqNorms))
	}
	if len(tr.Params) != len(args.Params) {
		t.Fatal("parameter length changed")
	}
	changed := false
	for i := range tr.Params {
		if tr.Params[i] != args.Params[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("training did not change the model")
	}
	var cr CloudRoundReply
	if err := client.Call("Device.CloudRound", CloudRoundArgs{Step: 1}, &cr); err != nil {
		t.Fatal(err)
	}

	// Bad hyperparameters are rejected.
	bad := args
	bad.Hyper.BatchSize = 0
	if err := client.Call("Device.Train", bad, &tr); err == nil {
		t.Fatal("expected error for invalid hyperparameters")
	}

	// Class distributions round-trip.
	var cd ClassDistReply
	if err := client.Call("Device.ClassDist", ClassDistArgs{Devices: []int{3}}, &cd); err != nil {
		t.Fatal(err)
	}
	if len(cd.Distributions) != 1 || len(cd.Distributions[0]) != 10 {
		t.Fatalf("class distributions %v", cd.Distributions)
	}
}

func TestEdgeServerValidation(t *testing.T) {
	if _, err := NewEdgeServer(0, sampling.DefaultMACHConfig(), Hyper{}, 1, nil, nil); err == nil {
		t.Fatal("expected error for nil resolver")
	}
	bad := sampling.DefaultMACHConfig()
	bad.Alpha = 5
	if _, err := NewEdgeServer(0, bad, Hyper{}, 1, StaticResolver(nil), nil); err == nil {
		t.Fatal("expected error for invalid MACH config")
	}
	res := StaticResolver(map[int]string{1: "addr"})
	if _, err := res(2); err == nil {
		t.Fatal("expected resolver miss")
	}
}

func TestCloudConfigValidation(t *testing.T) {
	valid := CloudConfig{Steps: 10, CloudInterval: 5, Participation: 0.5}
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*CloudConfig)
	}{
		{"zero steps", func(c *CloudConfig) { c.Steps = 0 }},
		{"zero interval", func(c *CloudConfig) { c.CloudInterval = 0 }},
		{"participation", func(c *CloudConfig) { c.Participation = 0 }},
		{"negative eval", func(c *CloudConfig) { c.EvalEvery = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := valid
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestNewDeviceServerValidation(t *testing.T) {
	if _, err := NewDeviceServer(testArch, nil, sampling.DefaultMACHConfig(), 1); err == nil {
		t.Fatal("expected error for empty device map")
	}
	empty := dataset.NewDataset("empty", 1, 4, 4, 10)
	if _, err := NewDeviceServer(testArch, map[int]*dataset.Dataset{0: empty}, sampling.DefaultMACHConfig(), 1); err == nil {
		t.Fatal("expected error for empty dataset")
	}
}

func TestEdgeStepFailsOnDeadDeviceHost(t *testing.T) {
	base, err := testArch(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Resolver points at a port nothing listens on.
	e, err := NewEdgeServer(0, sampling.DefaultMACHConfig(),
		Hyper{LocalEpochs: 1, BatchSize: 2, LearningRate: 0.1}, 1,
		StaticResolver(map[int]string{0: "127.0.0.1:1"}), base.ParamVector())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var rep EdgeStepReply
	if err := e.Step(EdgeStepArgs{Step: 0, Members: []int{0}, Capacity: 1}, &rep); err == nil {
		t.Fatal("expected dial error for dead device host")
	}
}

func TestTrainRejectsWrongParameterLength(t *testing.T) {
	task, err := dataset.NewTask(dataset.MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	data, err := task.Generate(rand.New(rand.NewSource(1)), 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewDeviceServer(testArch, map[int]*dataset.Dataset{0: data}, sampling.DefaultMACHConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var tr TrainReply
	err = client.Call("Device.Train", TrainArgs{
		Device: 0, Params: []float64{1, 2, 3},
		Hyper: Hyper{LocalEpochs: 1, BatchSize: 2, LearningRate: 0.1},
	}, &tr)
	if err == nil {
		t.Fatal("expected parameter-length error over RPC")
	}
}

func TestEdgeStepEmptyMembersKeepsModel(t *testing.T) {
	base, err := testArch(rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	params := base.ParamVector()
	e, err := NewEdgeServer(0, sampling.DefaultMACHConfig(),
		Hyper{LocalEpochs: 1, BatchSize: 2, LearningRate: 0.1}, 1,
		StaticResolver(nil), params)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var rep EdgeStepReply
	if err := e.Step(EdgeStepArgs{Step: 3, Members: nil, Capacity: 2}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Sampled != 0 || len(rep.Params) != len(params) {
		t.Fatalf("empty edge step changed state: sampled=%d", rep.Sampled)
	}
	for i := range params {
		if rep.Params[i] != params[i] {
			t.Fatal("edge model changed without participants")
		}
	}
}

func TestNewCloudValidation(t *testing.T) {
	task, err := dataset.NewTask(dataset.MNISTLike(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	test, err := task.Generate(rand.New(rand.NewSource(1)), 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := mobility.GenerateSchedule(2, 2, 4, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := CloudConfig{Steps: 10, CloudInterval: 5, Participation: 0.5, Seed: 1}

	if _, err := NewCloud(cfg, testArch, nil, test, []string{"a", "b"}, nil); err == nil {
		t.Fatal("expected nil-schedule error")
	}
	if _, err := NewCloud(cfg, testArch, sched, test, []string{"only-one"}, nil); err == nil {
		t.Fatal("expected edge-count mismatch error")
	}
	long := cfg
	long.Steps = 99
	if _, err := NewCloud(long, testArch, sched, test, []string{"a", "b"}, nil); err == nil {
		t.Fatal("expected short-schedule error")
	}
	if _, err := NewCloud(cfg, testArch, sched, nil, []string{"a", "b"}, nil); err == nil {
		t.Fatal("expected empty-test error")
	}
	// Valid inputs but unreachable edge addresses: dial must fail.
	if _, err := NewCloud(cfg, testArch, sched, test, []string{"127.0.0.1:1", "127.0.0.1:1"}, nil); err == nil {
		t.Fatal("expected dial error")
	}
}
