// Package fed runs the HFL system of internal/hfl as a real distributed
// deployment: device hosts, edge servers and a cloud coordinator are separate
// processes (or goroutines in tests) communicating over TCP with net/rpc and
// gob encoding.
//
// The roles mirror the paper's architecture (§II):
//
//   - a device host (DeviceServer) owns a set of logical mobile devices —
//     their local datasets, their models, and, crucially, their gradient
//     experience buffers (Algorithm 2 runs ON the device, which is what
//     makes the experience travel with the device across edges);
//   - an edge server (EdgeServer) executes one edge's share of a time step:
//     it queries its current members' G̃² estimates, computes the sampling
//     strategy (Algorithm 3), dispatches local training, and aggregates the
//     returned models (Eq. 5);
//   - the cloud (Cloud) owns the mobility schedule B^t, drives time steps,
//     aggregates edge models every T_g steps (Eq. 6), and redistributes the
//     global model.
//
// The deployment produces the same algorithm as the in-process simulator;
// an integration test trains the same tiny task both ways and checks that
// the distributed run learns.
package fed

// Hyper carries the local-update hyperparameters of Eq. (4) to devices.
type Hyper struct {
	LocalEpochs  int
	BatchSize    int
	LearningRate float64
}

// EstimateArgs asks a device host for the current UCB gradient-norm
// estimates G̃² of some of its devices (Eq. 15).
type EstimateArgs struct {
	Step    int
	Devices []int
}

// EstimateReply returns the estimates aligned with EstimateArgs.Devices.
type EstimateReply struct {
	Estimates []float64
}

// TrainArgs asks one logical device to run local updating from the given
// edge model parameters.
type TrainArgs struct {
	Step   int
	Device int
	Params []float64
	Hyper  Hyper
}

// TrainReply returns the updated local model and the squared norms of the
// local stochastic gradients (the training experience of Algorithm 2).
type TrainReply struct {
	Params  []float64
	SqNorms []float64
}

// CloudRoundArgs tells device hosts an edge-to-cloud communication happened
// at step T, so experience buffers fold (Algorithm 2, lines 2-4).
type CloudRoundArgs struct {
	Step int
}

// CloudRoundReply is empty.
type CloudRoundReply struct{}

// ClassDistArgs asks for the label distributions of some devices (used by
// the class-balance strategy).
type ClassDistArgs struct {
	Devices []int
}

// ClassDistReply returns one distribution per requested device.
type ClassDistReply struct {
	Distributions [][]float64
}

// EdgeStepArgs asks an edge server to execute one time step for its edge.
type EdgeStepArgs struct {
	Step     int
	Members  []int
	Capacity float64
	// Params, when non-nil, resets the edge model first (sent by the
	// cloud after each global aggregation).
	Params []float64
}

// EdgeStepReply returns the updated edge model and how many devices trained.
type EdgeStepReply struct {
	Params  []float64
	Sampled int
}

// PingArgs/PingReply support liveness checks.
type PingArgs struct{}

// PingReply carries the responder's role for diagnostics.
type PingReply struct {
	Role string
}
