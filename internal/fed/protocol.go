// Package fed runs the HFL system of internal/hfl as a real distributed
// deployment: device hosts, edge servers and a cloud coordinator are separate
// processes (or goroutines in tests) communicating over TCP with net/rpc and
// gob encoding.
//
// The roles mirror the paper's architecture (§II):
//
//   - a device host (DeviceServer) owns a set of logical mobile devices —
//     their local datasets, their models, and, crucially, their gradient
//     experience buffers (Algorithm 2 runs ON the device, which is what
//     makes the experience travel with the device across edges);
//   - an edge server (EdgeServer) executes one edge's share of a time step:
//     it queries its current members' G̃² estimates, computes the sampling
//     strategy (Algorithm 3), dispatches local training, and aggregates the
//     returned models (Eq. 5);
//   - the cloud (Cloud) owns the mobility schedule B^t, drives time steps,
//     aggregates edge models every T_g steps (Eq. 6), and redistributes the
//     global model.
//
// # Wire formats
//
// The cloud's CloudConfig.Codec selects the wire format for every model
// transfer of the run (DESIGN.md §6). Under codec.SchemeRaw the protocol is
// the legacy one: full float64 vectors ride in TrainArgs/TrainReply (one
// pair per sampled device) and in every EdgeStepArgs/EdgeStepReply. Under
// the codec schemes the vectors move as codec.Blob payloads and three
// structural optimizations engage:
//
//   - baseline caching: Device.SetBase installs an edge's base model on a
//     host once; Device.TrainMany then names it by ID for all of the host's
//     sampled devices, eliminating the per-device duplicate upload;
//   - host-side update sums: TrainMany returns the single summed update
//     Σ(w_m − base) of its devices instead of per-device models, and when
//     one host covers the edge's whole sample it advances the base in place
//     so that no model bytes cross the wire at all (the edge recovers the
//     bits later with Device.GetBase when it actually needs them);
//   - on-demand edge models: EdgeStepReply carries the edge model only when
//     the cloud asks (WantModel, at cloud rounds), and the cloud ships the
//     global as a delta against the previous global it distributed.
//
// Both formats compute edge aggregation with the same float operations in
// the same order (per-host partial sums of w_m − base in sampled order,
// hosts reduced in sorted-address order, then base + Σ/|sample|), so a run
// over the lossless delta path reproduces the raw path's evaluation history
// bit for bit. The deployment produces the same algorithm as the in-process
// simulator; an integration test trains the same tiny task both ways and
// checks that the distributed run learns.
package fed

import "github.com/mach-fl/mach/internal/codec"

// SpanContext carries the caller's span ID in RPC args so the server-side
// handler span nests under it in the stitched trace. Span IDs are pure
// functions of (kind, step, edge, device) — telemetry.DeriveSpanID — so
// callers populate the field unconditionally: the bytes on the wire do not
// depend on whether either end records spans, which keeps runs bit-identical
// with tracing on or off.
type SpanContext struct {
	Parent uint64
}

// Hyper carries the local-update hyperparameters of Eq. (4) to devices.
type Hyper struct {
	LocalEpochs  int
	BatchSize    int
	LearningRate float64
}

// EstimateArgs asks a device host for the current UCB gradient-norm
// estimates G̃² of some of its devices (Eq. 15).
type EstimateArgs struct {
	Step    int
	Devices []int
	Span    SpanContext
}

// EstimateReply returns the estimates aligned with EstimateArgs.Devices.
type EstimateReply struct {
	Estimates []float64
}

// TrainArgs asks one logical device to run local updating from the given
// edge model parameters. It is the legacy (codec.SchemeRaw) training RPC:
// every sampled device receives its own full copy of the edge base model.
type TrainArgs struct {
	Step   int
	Device int
	Params []float64
	Hyper  Hyper
	Span   SpanContext
}

// TrainReply returns the updated local model and the squared norms of the
// local stochastic gradients (the training experience of Algorithm 2).
type TrainReply struct {
	Params  []float64
	SqNorms []float64
}

// SetBaseArgs installs an edge's base model on a device host under a
// baseline ID (codec paths only). The blob is baseline-free; later
// TrainMany calls and codec blobs reference the vector by ID.
type SetBaseArgs struct {
	Edge  int
	ID    uint64
	Model codec.Blob
	Span  SpanContext
}

// SetBaseReply is empty.
type SetBaseReply struct{}

// TrainManyArgs asks a device host to run local updating on all of the
// edge's sampled devices it hosts, from the cached base model named by
// BaseID. Devices lists them in the edge's sampled order, which fixes the
// float summation order of the reply's update sum.
type TrainManyArgs struct {
	Step    int
	Edge    int
	Devices []int
	BaseID  uint64
	Scheme  codec.Scheme
	Hyper   Hyper
	// Advance, when set, tells the host this call covers the edge's entire
	// sample for the step: the host computes the next base
	// base + Σ(w_m − base)/|Devices| itself, installs it under NextID and
	// drops BaseID, and the reply carries no update sum — no model bytes
	// cross the wire.
	Advance bool
	NextID  uint64
	Span    SpanContext
}

// TrainManyReply returns the host's training results. Sum (present unless
// the call advanced the base host-side) encodes Σ(w_m − base) over
// args.Devices in order, baseline-free; SqNorms aligns with args.Devices.
type TrainManyReply struct {
	Sum     codec.Blob
	HasSum  bool
	SqNorms [][]float64
}

// GetBaseArgs fetches the bits of a cached base model back from a host
// (always encoded lossless, whatever the run's scheme). Edges use it when
// they let a host advance the base and later need the vector themselves —
// to answer the cloud's WantModel or to seed a second host.
type GetBaseArgs struct {
	Edge int
	ID   uint64
	Span SpanContext
}

// GetBaseReply carries the requested base model.
type GetBaseReply struct {
	Model codec.Blob
}

// CloudRoundArgs tells device hosts an edge-to-cloud communication happened
// at step T, so experience buffers fold (Algorithm 2, lines 2-4).
type CloudRoundArgs struct {
	Step int
	Span SpanContext
}

// CloudRoundReply is empty.
type CloudRoundReply struct{}

// ClassDistArgs asks for the label distributions of some devices (used by
// the class-balance strategy).
type ClassDistArgs struct {
	Devices []int
}

// ClassDistReply returns one distribution per requested device.
type ClassDistReply struct {
	Distributions [][]float64
}

// EdgeStepArgs asks an edge server to execute one time step for its edge.
// Scheme selects the wire format for the whole step; the edge forwards it
// to its device hosts.
type EdgeStepArgs struct {
	Step     int
	Members  []int
	Capacity float64
	Scheme   codec.Scheme
	// Params, when non-nil, resets the edge model first (legacy raw path:
	// sent by the cloud after each global aggregation).
	Params []float64
	// Model/ModelID reset the edge model on the codec paths: the blob is
	// encoded against the previous global the cloud distributed, and
	// ModelID names the new global for the edge's reply baseline.
	Model    codec.Blob
	ModelID  uint64
	HasModel bool
	// WantModel asks the edge to return its model in the reply. The cloud
	// sets it at cloud rounds; on the raw path the model is always returned.
	WantModel bool
	Span      SpanContext
}

// EdgeStepReply returns how many devices trained, plus the updated edge
// model — always as Params on the raw path, as Model only when requested
// on the codec paths (encoded against the global named by the last
// EdgeStepArgs.ModelID).
type EdgeStepReply struct {
	Params   []float64
	Model    codec.Blob
	HasModel bool
	Sampled  int
}

// CommArgs asks a server for its measured communication counters.
type CommArgs struct{}

// CommReply carries measured wire bytes and model-transfer counts. For an
// edge server, uplink is device-host→edge traffic and downlink the
// reverse, and the transfer counts tally model-bearing messages.
type CommReply struct {
	UplinkBytes   int64
	DownlinkBytes int64
	Uploads       int64
	Downloads     int64
}

// PingArgs/PingReply support liveness checks.
type PingArgs struct{}

// PingReply carries the responder's role for diagnostics.
type PingReply struct {
	Role string
}
