package fed

import (
	"fmt"
	"math/rand"
	"net"
	"net/rpc"
	"sort"
	"sync"

	"github.com/mach-fl/mach/internal/sampling"
)

// EdgeServer executes one edge's share of every time step: it fetches its
// current members' G̃² estimates from their device hosts, derives the edge
// sampling strategy (Algorithm 3), dispatches local training, and aggregates
// the returned models into the edge model.
type EdgeServer struct {
	id       int
	machCfg  sampling.MACHConfig
	hyper    Hyper
	seed     int64
	resolver Resolver

	mu     sync.Mutex
	params []float64

	clients  map[string]*rpc.Client
	listener net.Listener
}

// Resolver maps a logical device ID to the address of the host serving it.
// Deployments back it with static config or a registry.
type Resolver func(device int) (string, error)

// StaticResolver resolves from a fixed device→address table.
func StaticResolver(table map[int]string) Resolver {
	return func(device int) (string, error) {
		addr, ok := table[device]
		if !ok {
			return "", fmt.Errorf("fed: no host for device %d", device)
		}
		return addr, nil
	}
}

// NewEdgeServer creates an edge. initialParams seeds the edge model (the
// cloud re-sends parameters at every global aggregation anyway).
func NewEdgeServer(id int, machCfg sampling.MACHConfig, hyper Hyper, seed int64, resolver Resolver, initialParams []float64) (*EdgeServer, error) {
	if err := machCfg.Validate(); err != nil {
		return nil, err
	}
	if resolver == nil {
		return nil, fmt.Errorf("fed: edge %d needs a resolver", id)
	}
	return &EdgeServer{
		id:       id,
		machCfg:  machCfg,
		hyper:    hyper,
		seed:     seed,
		resolver: resolver,
		params:   append([]float64(nil), initialParams...),
		clients:  make(map[string]*rpc.Client),
	}, nil
}

// Serve starts the edge's RPC listener and returns the bound address.
func (e *EdgeServer) Serve(addr string) (string, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Edge", e); err != nil {
		return "", fmt.Errorf("fed: register edge service: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("fed: edge listen: %w", err)
	}
	e.listener = ln
	go acceptLoop(srv, ln)
	return ln.Addr().String(), nil
}

// Close stops the listener and drops device-host connections, reporting
// the first failure.
func (e *EdgeServer) Close() error {
	var firstErr error
	e.mu.Lock()
	for _, c := range e.clients {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	e.clients = map[string]*rpc.Client{}
	e.mu.Unlock()
	if e.listener != nil {
		if err := e.listener.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Ping implements the liveness RPC.
func (e *EdgeServer) Ping(_ PingArgs, reply *PingReply) error {
	reply.Role = fmt.Sprintf("edge-%d", e.id)
	return nil
}

func (e *EdgeServer) client(addr string) (*rpc.Client, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.clients[addr]; ok {
		return c, nil
	}
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fed: edge %d dial %s: %w", e.id, addr, err)
	}
	e.clients[addr] = c
	return c, nil
}

// groupByHost resolves each member to its host address and groups them.
// Addresses are collected at insertion time and sorted, never by walking
// the map, so per-group RPC dispatch and result ordering are stable
// across runs.
func (e *EdgeServer) groupByHost(members []int) (map[string][]int, []string, error) {
	groups := map[string][]int{}
	var addrs []string
	for _, m := range members {
		addr, err := e.resolver(m)
		if err != nil {
			return nil, nil, err
		}
		if _, ok := groups[addr]; !ok {
			addrs = append(addrs, addr)
		}
		groups[addr] = append(groups[addr], m)
	}
	sort.Strings(addrs)
	return groups, addrs, nil
}

// Step implements the edge's share of Algorithm 1 for one time step.
func (e *EdgeServer) Step(args EdgeStepArgs, reply *EdgeStepReply) error {
	if args.Params != nil {
		e.mu.Lock()
		e.params = append(e.params[:0], args.Params...)
		e.mu.Unlock()
	}
	if len(args.Members) == 0 {
		e.mu.Lock()
		reply.Params = append([]float64(nil), e.params...)
		e.mu.Unlock()
		return nil
	}

	groups, addrs, err := e.groupByHost(args.Members)
	if err != nil {
		return err
	}

	// Experience updating is device-side: fetch the members' current UCB
	// estimates from their hosts.
	estimate := make(map[int]float64, len(args.Members))
	for _, addr := range addrs {
		c, err := e.client(addr)
		if err != nil {
			return err
		}
		var rep EstimateReply
		if err := c.Call("Device.Estimate", EstimateArgs{Step: args.Step, Devices: groups[addr]}, &rep); err != nil {
			return fmt.Errorf("fed: edge %d estimate via %s: %w", e.id, addr, err)
		}
		for i, id := range groups[addr] {
			estimate[id] = rep.Estimates[i]
		}
	}
	estimates := make([]float64, len(args.Members))
	for i, m := range args.Members {
		estimates[i] = estimate[m]
	}

	// Edge sampling (Algorithm 3) and Bernoulli device sampling.
	probs := sampling.EdgeSampling(e.machCfg, args.Capacity, estimates)
	rng := rand.New(rand.NewSource(e.seed + int64(args.Step)*1009 + int64(e.id)))
	var sampled []int
	for i, m := range args.Members {
		if rng.Float64() < probs[i] {
			sampled = append(sampled, m)
		}
	}
	if len(sampled) == 0 {
		e.mu.Lock()
		reply.Params = append([]float64(nil), e.params...)
		e.mu.Unlock()
		return nil
	}

	// Dispatch local training concurrently and aggregate.
	e.mu.Lock()
	base := append([]float64(nil), e.params...)
	e.mu.Unlock()
	type trainResult struct {
		params []float64
		err    error
	}
	results := make([]trainResult, len(sampled))
	var wg sync.WaitGroup
	for i, m := range sampled {
		addr, err := e.resolver(m)
		if err != nil {
			return err
		}
		c, err := e.client(addr)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(i, m int, c *rpc.Client) {
			defer wg.Done()
			var rep TrainReply
			err := c.Call("Device.Train", TrainArgs{
				Step: args.Step, Device: m, Params: base, Hyper: e.hyper,
			}, &rep)
			results[i] = trainResult{params: rep.Params, err: err}
		}(i, m, c)
	}
	wg.Wait()
	next := make([]float64, len(base))
	inv := 1 / float64(len(sampled))
	for _, r := range results {
		if r.err != nil {
			return fmt.Errorf("fed: edge %d training: %w", e.id, r.err)
		}
		for j, v := range r.params {
			next[j] += inv * v
		}
	}

	e.mu.Lock()
	e.params = next
	reply.Params = append([]float64(nil), next...)
	e.mu.Unlock()
	reply.Sampled = len(sampled)
	return nil
}
