package fed

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/rpc"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/mach-fl/mach/internal/codec"
	"github.com/mach-fl/mach/internal/sampling"
	"github.com/mach-fl/mach/internal/telemetry"
)

// EdgeServer executes one edge's share of every time step: it fetches its
// current members' G̃² estimates from their device hosts, derives the edge
// sampling strategy (Algorithm 3), dispatches local training, and aggregates
// the returned updates into the edge model.
//
// Under the codec wire formats (see protocol.go) the edge maintains one
// baseline stream per device host: the current base model is installed on a
// host once per change (Device.SetBase), training requests name it by ID,
// and when a single host covers the whole sample the base advances on the
// host itself — the edge then marks its own copy stale and refetches the
// bits (Device.GetBase) only when something actually needs them.
type EdgeServer struct {
	id       int
	machCfg  sampling.MACHConfig
	hyper    Hyper
	seed     int64
	resolver Resolver

	mu     sync.Mutex
	params []float64
	// stale marks that the authoritative base bits live on staleAddr (the
	// host advanced the base in place) rather than in params.
	stale     bool
	staleAddr string
	baseID    uint64            // ID of the current base model (codec paths)
	lastID    uint64            // monotonic baseline-ID allocator
	installed map[string]uint64 // host address → base ID it has cached
	cloudView []float64         // last global model decoded from the cloud
	cloudID   uint64            // its baseline ID (EdgeStepArgs.ModelID)
	efReply   []float64         // error feedback for lossy cloud-reply encodes

	clients  map[string]*rpc.Client
	listener net.Listener

	// Measured wire traffic on the edge↔device-host connections, plus
	// model-bearing message counts (Edge.Comm exposes them).
	commUp    atomic.Int64 // bytes hosts sent us: device uplink
	commDown  atomic.Int64 // bytes we sent hosts: device downlink
	uploads   atomic.Int64
	downloads atomic.Int64

	// tel counts served RPCs and step activity; nil disables it.
	tel *telemetry.Telemetry
}

// SetTelemetry attaches a telemetry sink (nil detaches). Call before Serve.
func (e *EdgeServer) SetTelemetry(t *telemetry.Telemetry) { e.tel = t }

// Resolver maps a logical device ID to the address of the host serving it.
// Deployments back it with static config or a registry.
type Resolver func(device int) (string, error)

// StaticResolver resolves from a fixed device→address table.
func StaticResolver(table map[int]string) Resolver {
	return func(device int) (string, error) {
		addr, ok := table[device]
		if !ok {
			return "", fmt.Errorf("fed: no host for device %d", device)
		}
		return addr, nil
	}
}

// NewEdgeServer creates an edge. initialParams seeds the edge model (the
// cloud re-sends parameters at every global aggregation anyway).
func NewEdgeServer(id int, machCfg sampling.MACHConfig, hyper Hyper, seed int64, resolver Resolver, initialParams []float64) (*EdgeServer, error) {
	if err := machCfg.Validate(); err != nil {
		return nil, err
	}
	if resolver == nil {
		return nil, fmt.Errorf("fed: edge %d needs a resolver", id)
	}
	return &EdgeServer{
		id:       id,
		machCfg:  machCfg,
		hyper:    hyper,
		seed:     seed,
		resolver: resolver,
		params:   append([]float64(nil), initialParams...),
		// Baseline IDs start at 1: hosts' zero-valued cache entries must
		// never look like an already-installed base.
		baseID:    1,
		lastID:    1,
		installed: make(map[string]uint64),
		clients:   make(map[string]*rpc.Client),
	}, nil
}

// Serve starts the edge's RPC listener and returns the bound address.
func (e *EdgeServer) Serve(addr string) (string, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Edge", e); err != nil {
		return "", fmt.Errorf("fed: register edge service: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("fed: edge listen: %w", err)
	}
	e.listener = ln
	go acceptLoop(srv, ln)
	return ln.Addr().String(), nil
}

// Close stops the listener and drops device-host connections, reporting
// the first failure.
func (e *EdgeServer) Close() error {
	var firstErr error
	e.mu.Lock()
	for _, c := range e.clients {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	e.clients = map[string]*rpc.Client{}
	e.mu.Unlock()
	if e.listener != nil {
		if err := e.listener.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Ping implements the liveness RPC.
func (e *EdgeServer) Ping(_ PingArgs, reply *PingReply) error {
	e.tel.Add(telemetry.CounterRPCCalls, 1)
	reply.Role = fmt.Sprintf("edge-%d", e.id)
	return nil
}

// Comm reports the edge's measured device-host traffic.
func (e *EdgeServer) Comm(_ CommArgs, reply *CommReply) error {
	e.tel.Add(telemetry.CounterRPCCalls, 1)
	reply.UplinkBytes = e.commUp.Load()
	reply.DownlinkBytes = e.commDown.Load()
	reply.Uploads = e.uploads.Load()
	reply.Downloads = e.downloads.Load()
	return nil
}

func (e *EdgeServer) client(addr string) (*rpc.Client, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.clients[addr]; ok {
		return c, nil
	}
	c, err := dialCounting(addr, &e.commUp, &e.commDown)
	if err != nil {
		return nil, fmt.Errorf("fed: edge %d dial %s: %w", e.id, addr, err)
	}
	e.clients[addr] = c
	return c, nil
}

// groupByHost resolves each member to its host address and groups them.
// Addresses are collected at insertion time and sorted, never by walking
// the map, so per-group RPC dispatch and result ordering are stable across
// runs. The returned memberAddr table lets later phases of the step reuse
// the resolution instead of querying the resolver again.
func (e *EdgeServer) groupByHost(members []int) (groups map[string][]int, addrs []string, memberAddr map[int]string, err error) {
	groups = map[string][]int{}
	memberAddr = make(map[int]string, len(members))
	for _, m := range members {
		addr, err := e.resolver(m)
		if err != nil {
			return nil, nil, nil, err
		}
		if _, ok := groups[addr]; !ok {
			addrs = append(addrs, addr)
		}
		groups[addr] = append(groups[addr], m)
		memberAddr[m] = addr
	}
	sort.Strings(addrs)
	return groups, addrs, memberAddr, nil
}

// stepSpanID is the edge's handler-span ID for one step — the parent of
// every client RPC span the edge opens while executing it. A pure hash, so
// helpers re-derive it instead of threading the Span value around.
func (e *EdgeServer) stepSpanID(step int) telemetry.SpanID {
	return telemetry.DeriveSpanID(telemetry.SpanHandleEdgeStep, step, e.id, -1)
}

// Step implements the edge's share of Algorithm 1 for one time step.
func (e *EdgeServer) Step(args EdgeStepArgs, reply *EdgeStepReply) error {
	e.tel.Add(telemetry.CounterRPCCalls, 1)
	stepStart := e.tel.Now()
	sp := e.tel.StartSpan(telemetry.SpanHandleEdgeStep, telemetry.SpanID(args.Span.Parent), args.Step, e.id, -1)
	defer sp.End()
	defer e.tel.ObserveSince(telemetry.HistStepNS, stepStart)
	e.tel.Observe(telemetry.HistEdgeMembers, int64(len(args.Members)))
	if err := args.Scheme.Validate(); err != nil {
		return err
	}
	raw := args.Scheme == codec.SchemeRaw
	if raw && args.Params != nil {
		e.mu.Lock()
		e.params = append(e.params[:0], args.Params...)
		e.mu.Unlock()
	}
	if args.HasModel {
		if err := e.installGlobal(args); err != nil {
			return err
		}
	}
	if len(args.Members) == 0 {
		return e.finishStep(args, 0, reply)
	}

	groups, addrs, memberAddr, err := e.groupByHost(args.Members)
	if err != nil {
		return err
	}
	estimates, err := e.fetchEstimates(args.Step, args.Members, groups, addrs)
	if err != nil {
		return err
	}

	// Edge sampling (Algorithm 3) and Bernoulli device sampling.
	probs := sampling.EdgeSampling(e.machCfg, args.Capacity, estimates)
	rng := rand.New(rand.NewSource(e.seed + int64(args.Step)*1009 + int64(e.id)))
	var sampled []int
	for i, m := range args.Members {
		if rng.Float64() < probs[i] {
			sampled = append(sampled, m)
		}
	}
	if len(sampled) == 0 {
		return e.finishStep(args, 0, reply)
	}

	// Group the sampled devices by host, reusing the member resolution.
	// Within a host the sampled order is kept: it fixes the summation order
	// of the aggregation on both wire formats.
	sampledGroups := map[string][]int{}
	var sampledAddrs []string
	for _, m := range sampled {
		addr := memberAddr[m]
		if _, ok := sampledGroups[addr]; !ok {
			sampledAddrs = append(sampledAddrs, addr)
		}
		sampledGroups[addr] = append(sampledGroups[addr], m)
	}
	sort.Strings(sampledAddrs)

	if raw {
		err = e.trainRaw(args.Step, len(sampled), sampledAddrs, sampledGroups)
	} else {
		err = e.trainCodec(args, len(sampled), sampledAddrs, sampledGroups)
	}
	if err != nil {
		return err
	}
	return e.finishStep(args, len(sampled), reply)
}

// installGlobal decodes the cloud's global model from EdgeStepArgs and makes
// it the edge's current base.
func (e *EdgeServer) installGlobal(args EdgeStepArgs) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var baseline []float64
	if args.Model.Baseline != 0 {
		if e.cloudView == nil || args.Model.Baseline != e.cloudID {
			return fmt.Errorf("fed: edge %d has no global %d to delta against: %w",
				e.id, args.Model.Baseline, codec.ErrUnknownBaseline)
		}
		baseline = e.cloudView
	}
	global, err := codec.Decode(args.Model, baseline)
	if err != nil {
		return fmt.Errorf("fed: edge %d decode global: %w", e.id, err)
	}
	e.cloudView = global
	e.cloudID = args.ModelID
	e.params = append([]float64(nil), global...)
	e.stale = false
	e.lastID++
	e.baseID = e.lastID
	return nil
}

// finishStep fills the step reply: the full vector on the raw path, an
// encoded blob only when the cloud asked for it on the codec paths.
func (e *EdgeServer) finishStep(args EdgeStepArgs, sampled int, reply *EdgeStepReply) error {
	e.tel.Observe(telemetry.HistEdgeSampled, int64(sampled))
	e.tel.Add(telemetry.CounterDevicesTrained, int64(sampled))
	reply.Sampled = sampled
	if args.Scheme == codec.SchemeRaw {
		e.mu.Lock()
		reply.Params = append([]float64(nil), e.params...)
		e.mu.Unlock()
		return nil
	}
	if !args.WantModel {
		return nil
	}
	if err := e.ensureParams(args.Step); err != nil {
		return err
	}
	e.mu.Lock()
	params := e.params
	baseline := e.cloudView
	baseID := e.cloudID
	var ef []float64
	if args.Scheme == codec.SchemeInt8 {
		if len(e.efReply) != len(params) {
			e.efReply = make([]float64, len(params))
		}
		ef = e.efReply
	}
	e.mu.Unlock()
	if baseline != nil && len(baseline) != len(params) {
		baseline, baseID = nil, 0
	}
	blob, err := codec.Encode(args.Scheme, params, baseline, baseID, ef)
	if err != nil {
		return fmt.Errorf("fed: edge %d encode model: %w", e.id, err)
	}
	reply.Model = blob
	reply.HasModel = true
	return nil
}

// ensureParams makes e.params authoritative again after a host-side base
// advance, by fetching the bits back (always lossless). step labels the
// fetch's RPC span with the step it serves.
func (e *EdgeServer) ensureParams(step int) error {
	e.mu.Lock()
	if !e.stale {
		e.mu.Unlock()
		return nil
	}
	addr, id := e.staleAddr, e.baseID
	e.mu.Unlock()
	c, err := e.client(addr)
	if err != nil {
		return err
	}
	var rep GetBaseReply
	sp := e.tel.StartSpan(telemetry.SpanRPCGetBase, e.stepSpanID(step), step, e.id, -1)
	callErr := c.Call("Device.GetBase", GetBaseArgs{Edge: e.id, ID: id,
		Span: SpanContext{Parent: uint64(telemetry.DeriveSpanID(telemetry.SpanRPCGetBase, step, e.id, -1))},
	}, &rep)
	sp.End()
	if callErr != nil {
		return fmt.Errorf("fed: edge %d fetch base %d from %s: %w", e.id, id, addr, callErr)
	}
	params, err := codec.Decode(rep.Model, nil)
	if err != nil {
		return fmt.Errorf("fed: edge %d decode base %d: %w", e.id, id, err)
	}
	e.uploads.Add(1)
	e.mu.Lock()
	e.params = params
	e.stale = false
	e.mu.Unlock()
	return nil
}

// fetchEstimates queries the members' UCB estimates host by host,
// concurrently. Merging walks the sorted address list, so both the
// resulting estimate order and the first surfaced error are deterministic.
func (e *EdgeServer) fetchEstimates(step int, members []int, groups map[string][]int, addrs []string) ([]float64, error) {
	clients := make([]*rpc.Client, len(addrs))
	for i, addr := range addrs {
		c, err := e.client(addr)
		if err != nil {
			return nil, err
		}
		clients[i] = c
	}
	replies := make([]EstimateReply, len(addrs))
	errs := make([]error, len(addrs))
	parent := e.stepSpanID(step)
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			sp := e.tel.StartSpan(telemetry.SpanRPCEstimate, parent, step, e.id, i)
			errs[i] = clients[i].Call("Device.Estimate",
				EstimateArgs{Step: step, Devices: groups[addr],
					Span: SpanContext{Parent: uint64(telemetry.DeriveSpanID(telemetry.SpanRPCEstimate, step, e.id, i))},
				}, &replies[i])
			sp.End()
		}(i, addr)
	}
	wg.Wait()
	estimate := make(map[int]float64, len(members))
	for i, addr := range addrs {
		if errs[i] != nil {
			return nil, fmt.Errorf("fed: edge %d estimate via %s: %w", e.id, addr, errs[i])
		}
		if len(replies[i].Estimates) != len(groups[addr]) {
			return nil, fmt.Errorf("fed: edge %d: host %s returned %d estimates for %d devices",
				e.id, addr, len(replies[i].Estimates), len(groups[addr]))
		}
		for j, id := range groups[addr] {
			estimate[id] = replies[i].Estimates[j]
		}
	}
	estimates := make([]float64, len(members))
	for i, m := range members {
		estimates[i] = estimate[m]
	}
	return estimates, nil
}

// trainRaw dispatches per-device Device.Train calls (the legacy wire
// format: every sampled device gets its own full copy of the base model and
// returns a full trained model) and aggregates
// next = base + Σ(w_m − base)/|sample| with per-host partial sums — the
// same float operations in the same order as the codec path.
func (e *EdgeServer) trainRaw(step, totalSampled int, sampledAddrs []string, sampledGroups map[string][]int) error {
	e.mu.Lock()
	base := append([]float64(nil), e.params...)
	e.mu.Unlock()
	type trainResult struct {
		params []float64
		err    error
	}
	results := make(map[string][]trainResult, len(sampledAddrs))
	parent := e.stepSpanID(step)
	var wg sync.WaitGroup
	for _, addr := range sampledAddrs {
		c, err := e.client(addr)
		if err != nil {
			return err
		}
		res := make([]trainResult, len(sampledGroups[addr]))
		results[addr] = res
		for i, m := range sampledGroups[addr] {
			e.downloads.Add(1)
			e.uploads.Add(1)
			wg.Add(1)
			go func(i, m int, c *rpc.Client) {
				defer wg.Done()
				var rep TrainReply
				sp := e.tel.StartSpan(telemetry.SpanRPCTrain, parent, step, e.id, m)
				err := c.Call("Device.Train", TrainArgs{
					Step: step, Device: m, Params: base, Hyper: e.hyper,
					Span: SpanContext{Parent: uint64(telemetry.DeriveSpanID(telemetry.SpanRPCTrain, step, e.id, m))},
				}, &rep)
				sp.End()
				res[i] = trainResult{params: rep.Params, err: err}
			}(i, m, c)
		}
	}
	wg.Wait()

	n := len(base)
	sum := make([]float64, n)
	hostSum := make([]float64, n)
	for _, addr := range sampledAddrs {
		for j := range hostSum {
			hostSum[j] = 0
		}
		for i, r := range results[addr] {
			if r.err != nil {
				return fmt.Errorf("fed: edge %d training device %d: %w", e.id, sampledGroups[addr][i], r.err)
			}
			if len(r.params) != n {
				return fmt.Errorf("fed: edge %d: device %d returned %d params, want %d",
					e.id, sampledGroups[addr][i], len(r.params), n)
			}
			for j, v := range r.params {
				hostSum[j] += v - base[j]
			}
		}
		for j := range sum {
			sum[j] += hostSum[j]
		}
	}
	e.advanceLocal(base, sum, totalSampled)
	return nil
}

// advanceLocal folds an update sum into the edge model:
// next = base + Σ/|sample|, allocating a fresh vector so cached baselines
// never alias a mutating slice.
func (e *EdgeServer) advanceLocal(base, sum []float64, totalSampled int) {
	inv := 1 / float64(totalSampled)
	next := make([]float64, len(base))
	for j := range next {
		next[j] = base[j] + inv*sum[j]
	}
	e.mu.Lock()
	e.params = next
	e.lastID++
	e.baseID = e.lastID
	e.mu.Unlock()
}

// trainCodec runs the step's training under a codec wire format: it makes
// sure every participating host caches the current base, dispatches one
// TrainMany per host, and folds the hosts' update sums into the next base —
// or, when one host covers the whole sample and the cloud does not need the
// model this step, lets that host advance the base in place so no model
// bytes cross the wire.
func (e *EdgeServer) trainCodec(args EdgeStepArgs, totalSampled int, sampledAddrs []string, sampledGroups map[string][]int) error {
	advance := len(sampledAddrs) == 1 && !args.WantModel

	// Install the current base on hosts that do not have it. Needs the
	// authoritative bits, so a stale edge refetches them first.
	e.mu.Lock()
	baseID := e.baseID
	e.mu.Unlock()
	for _, addr := range sampledAddrs {
		if e.installed[addr] == baseID {
			continue
		}
		if err := e.ensureParams(args.Step); err != nil {
			return err
		}
		if err := e.setBaseOn(args.Step, addr, args.Scheme, baseID); err != nil {
			return err
		}
	}
	if !advance {
		// The sum path computes next = base + Σ/|sample| edge-side.
		if err := e.ensureParams(args.Step); err != nil {
			return err
		}
	}

	var nextID uint64
	if advance {
		e.mu.Lock()
		e.lastID++
		nextID = e.lastID
		e.mu.Unlock()
	}
	clients := make([]*rpc.Client, len(sampledAddrs))
	for i, addr := range sampledAddrs {
		c, err := e.client(addr)
		if err != nil {
			return err
		}
		clients[i] = c
	}
	tmArgs := make([]TrainManyArgs, len(sampledAddrs))
	for i, addr := range sampledAddrs {
		tmArgs[i] = TrainManyArgs{
			Step:    args.Step,
			Edge:    e.id,
			Devices: sampledGroups[addr],
			BaseID:  baseID,
			Scheme:  args.Scheme,
			Hyper:   e.hyper,
			Advance: advance,
			NextID:  nextID,
			Span:    SpanContext{Parent: uint64(telemetry.DeriveSpanID(telemetry.SpanRPCTrainMany, args.Step, e.id, i))},
		}
	}
	replies := make([]TrainManyReply, len(sampledAddrs))
	errs := make([]error, len(sampledAddrs))
	parent := e.stepSpanID(args.Step)
	var wg sync.WaitGroup
	for i := range sampledAddrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := e.tel.StartSpan(telemetry.SpanRPCTrainMany, parent, args.Step, e.id, i)
			errs[i] = clients[i].Call("Device.TrainMany", tmArgs[i], &replies[i])
			sp.End()
		}(i)
	}
	wg.Wait()
	for i, addr := range sampledAddrs {
		if errs[i] == nil {
			continue
		}
		if !isUnknownBaseline(errs[i]) {
			return fmt.Errorf("fed: edge %d training via %s: %w", e.id, addr, errs[i])
		}
		// The host lost its base cache (e.g. a restart): the failed lookup
		// happened before any training, so reinstall the base and retry
		// once. A stale edge whose authoritative host forgot the base
		// cannot recover: ensureParams surfaces that as its own error.
		if err := e.ensureParams(args.Step); err != nil {
			return err
		}
		if err := e.setBaseOn(args.Step, addr, args.Scheme, baseID); err != nil {
			return err
		}
		replies[i] = TrainManyReply{}
		sp := e.tel.StartSpan(telemetry.SpanRPCTrainMany, parent, args.Step, e.id, i)
		retryErr := clients[i].Call("Device.TrainMany", tmArgs[i], &replies[i])
		sp.End()
		if retryErr != nil {
			return fmt.Errorf("fed: edge %d training via %s: %w", e.id, addr, retryErr)
		}
	}

	if advance {
		addr := sampledAddrs[0]
		e.mu.Lock()
		e.stale = true
		e.staleAddr = addr
		e.baseID = nextID
		e.mu.Unlock()
		e.installed[addr] = nextID
		return nil
	}

	e.mu.Lock()
	base := e.params
	e.mu.Unlock()
	sum := make([]float64, len(base))
	for i, addr := range sampledAddrs {
		if !replies[i].HasSum {
			return fmt.Errorf("fed: edge %d: host %s returned no update sum", e.id, addr)
		}
		hostSum, err := codec.Decode(replies[i].Sum, nil)
		if err != nil {
			return fmt.Errorf("fed: edge %d decode sum from %s: %w", e.id, addr, err)
		}
		if len(hostSum) != len(base) {
			return fmt.Errorf("fed: edge %d: host %s summed %d params, want %d",
				e.id, addr, len(hostSum), len(base))
		}
		e.uploads.Add(1)
		for j, v := range hostSum {
			sum[j] += v
		}
	}
	e.advanceLocal(base, sum, totalSampled)
	return nil
}

// setBaseOn installs the edge's current base model on one host. A host that
// lost its cache (restart) simply gets the full baseline-free blob again —
// the vector IDs make the stream self-describing. step labels the RPC span.
func (e *EdgeServer) setBaseOn(step int, addr string, scheme codec.Scheme, id uint64) error {
	c, err := e.client(addr)
	if err != nil {
		return err
	}
	e.mu.Lock()
	params := e.params
	e.mu.Unlock()
	blob, err := codec.Encode(scheme, params, nil, 0, nil)
	if err != nil {
		return fmt.Errorf("fed: edge %d encode base: %w", e.id, err)
	}
	var rep SetBaseReply
	sp := e.tel.StartSpan(telemetry.SpanRPCSetBase, e.stepSpanID(step), step, e.id, -1)
	callErr := c.Call("Device.SetBase", SetBaseArgs{Edge: e.id, ID: id, Model: blob,
		Span: SpanContext{Parent: uint64(telemetry.DeriveSpanID(telemetry.SpanRPCSetBase, step, e.id, -1))},
	}, &rep)
	sp.End()
	if callErr != nil {
		return fmt.Errorf("fed: edge %d set base on %s: %w", e.id, addr, callErr)
	}
	e.downloads.Add(1)
	e.installed[addr] = id
	return nil
}

// isUnknownBaseline detects codec.ErrUnknownBaseline both locally and
// across net/rpc, which flattens errors to strings.
func isUnknownBaseline(err error) bool {
	return err != nil && (errors.Is(err, codec.ErrUnknownBaseline) ||
		strings.Contains(err.Error(), codec.ErrUnknownBaseline.Error()))
}
