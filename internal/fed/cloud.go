package fed

import (
	"fmt"
	"net/rpc"
	"sync"
	"sync/atomic"

	"github.com/mach-fl/mach/internal/codec"
	"github.com/mach-fl/mach/internal/dataset"
	"github.com/mach-fl/mach/internal/hfl"
	"github.com/mach-fl/mach/internal/metrics"
	"github.com/mach-fl/mach/internal/mobility"
	"github.com/mach-fl/mach/internal/nn"
	"github.com/mach-fl/mach/internal/telemetry"
)

// CloudConfig parameterizes the coordinator.
type CloudConfig struct {
	// Steps is T, CloudInterval is T_g (Eq. 6).
	Steps         int
	CloudInterval int
	// Participation sets the per-edge capacity K_n =
	// Participation·|M|/|N|, as in the simulator.
	Participation float64
	// EvalEvery evaluates the global model every EvalEvery steps
	// (0 = every cloud round).
	EvalEvery int
	// Seed drives model initialization.
	Seed int64
	// Codec selects the wire format for every model transfer of the run
	// (DESIGN.md §6). The zero value, codec.SchemeDelta, is lossless and
	// reproduces codec.SchemeRaw's learning trajectory bit for bit while
	// moving far fewer bytes.
	Codec codec.Scheme
}

// Validate reports whether the config is usable.
func (c CloudConfig) Validate() error {
	switch {
	case c.Steps <= 0 || c.CloudInterval <= 0:
		return fmt.Errorf("fed: cloud steps/interval %d/%d must be positive", c.Steps, c.CloudInterval)
	case c.Participation <= 0 || c.Participation > 1:
		return fmt.Errorf("fed: participation %v outside (0,1]", c.Participation)
	case c.EvalEvery < 0:
		return fmt.Errorf("fed: eval interval %d negative", c.EvalEvery)
	}
	return c.Codec.Validate()
}

// Cloud is the coordinator: it owns the mobility plane, drives time steps
// across edge servers, aggregates edge models every T_g steps and
// redistributes the global model (Eq. 6).
type Cloud struct {
	cfg CloudConfig
	// src feeds the mobility plane as a per-step move stream (DESIGN.md
	// §12): a dense *mobility.Schedule via its adapter or a true streaming
	// source. The cloud keeps only the O(Devices) window below.
	src      mobility.StepSource
	nEdges   int
	nDevices int
	row      []int // device→edge attachments at step srcPos
	srcPos   int   // positioned step, -1 before the first advance
	// memberIndex materializes every edge's member set once per step,
	// repaired from the move stream between consecutive steps instead of
	// rescanning rows.
	memberIndex *mobility.MemberIndex
	test        *dataset.Dataset
	evalNet     *nn.Network
	global      []float64

	// prevView/prevID track the last global the cloud distributed, exactly
	// as the edges decoded it (for lossless schemes that is c.global
	// itself); the next distribution is encoded as a delta against it and
	// edge replies are decoded against it. efGlobal is the error-feedback
	// buffer for lossy global broadcasts.
	prevView []float64
	prevID   uint64
	lastID   uint64
	efGlobal []float64

	edges       []*rpc.Client
	deviceHosts []*rpc.Client

	// comm counts the bytes crossing the cloud's own connections, both
	// directions; transfers the model-bearing messages among them.
	comm      atomic.Int64
	transfers atomic.Int64

	// tel records step/eval timings, RPC fan-out and eval results; nil
	// disables it.
	tel *telemetry.Telemetry
}

// SetTelemetry attaches a telemetry sink (nil detaches). Call before Run.
func (c *Cloud) SetTelemetry(t *telemetry.Telemetry) { c.tel = t }

// NewCloud dials the edge servers and device hosts and initializes the
// global model from arch. Every connection counts its wire bytes into the
// cloud's communication counters (CommStats).
func NewCloud(cfg CloudConfig, arch hfl.ArchFunc, src mobility.StepSource, test *dataset.Dataset, edgeAddrs, deviceHostAddrs []string) (*Cloud, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("fed: cloud needs a valid schedule")
	}
	if s, ok := src.(*mobility.Schedule); ok && (s == nil || s.Validate() != nil) {
		return nil, fmt.Errorf("fed: cloud needs a valid schedule")
	}
	nEdges, nDevices, nSteps := src.Dims()
	if nEdges <= 0 || nDevices <= 0 || nSteps <= 0 {
		return nil, fmt.Errorf("fed: cloud needs a valid schedule")
	}
	if len(edgeAddrs) != nEdges {
		return nil, fmt.Errorf("fed: %d edge addresses for %d scheduled edges", len(edgeAddrs), nEdges)
	}
	if nSteps < cfg.Steps {
		return nil, fmt.Errorf("fed: schedule covers %d steps, config needs %d", nSteps, cfg.Steps)
	}
	if test == nil || test.Len() == 0 {
		return nil, fmt.Errorf("fed: cloud needs a test set")
	}
	rng := newRand(cfg.Seed)
	net0, err := arch(rng)
	if err != nil {
		return nil, fmt.Errorf("fed: build global model: %w", err)
	}
	c := &Cloud{
		cfg:         cfg,
		src:         src,
		nEdges:      nEdges,
		nDevices:    nDevices,
		row:         make([]int, nDevices),
		srcPos:      -1,
		memberIndex: mobility.NewMemberIndexWindow(0, nEdges),
		test:        test,
		evalNet:     net0,
		global:      net0.ParamVector(),
	}
	for _, addr := range edgeAddrs {
		cl, err := dialCounting(addr, &c.comm, &c.comm)
		if err != nil {
			return nil, fmt.Errorf("fed: cloud dial edge %s: %w", addr, err)
		}
		c.edges = append(c.edges, cl)
	}
	for _, addr := range deviceHostAddrs {
		cl, err := dialCounting(addr, &c.comm, &c.comm)
		if err != nil {
			return nil, fmt.Errorf("fed: cloud dial device host %s: %w", addr, err)
		}
		c.deviceHosts = append(c.deviceHosts, cl)
	}
	return c, nil
}

// Close drops all connections, reporting the first failure.
func (c *Cloud) Close() error {
	var firstErr error
	for _, cl := range c.edges {
		if err := cl.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, cl := range c.deviceHosts {
		if err := cl.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// GlobalParams returns a copy of the current global model parameters.
func (c *Cloud) GlobalParams() []float64 { return append([]float64(nil), c.global...) }

// CommStats collects the run's measured communication volume: the cloud's
// own connection counters plus each edge's device-facing counters. The
// cloud counters are snapshotted before the collection RPCs so the
// collection itself is not measured.
func (c *Cloud) CommStats() (hfl.CommStats, error) {
	stats := hfl.CommStats{
		CloudBytes:     c.comm.Load(),
		CloudTransfers: c.transfers.Load(),
		Measured:       true,
	}
	for n, cl := range c.edges {
		var rep CommReply
		if err := cl.Call("Edge.Comm", CommArgs{}, &rep); err != nil {
			return hfl.CommStats{}, fmt.Errorf("fed: comm stats from edge %d: %w", n, err)
		}
		stats.DeviceUplinkBytes += rep.UplinkBytes
		stats.DeviceDownlinkBytes += rep.DownlinkBytes
		stats.DeviceUploads += rep.Uploads
		stats.DeviceDownloads += rep.Downloads
	}
	return stats, nil
}

// Run drives the full training (Algorithm 1 over RPC) and returns the
// accuracy history.
func (c *Cloud) Run() (*metrics.History, error) {
	hist := &metrics.History{}
	capacity := c.cfg.Participation * float64(c.nDevices) / float64(c.nEdges)
	raw := c.cfg.Codec == codec.SchemeRaw
	resetParams := true // first step seeds every edge with the global model
	edgeParams := make([][]float64, c.nEdges)

	prevComm := c.comm.Load()
	for t := 0; t < c.cfg.Steps; t++ {
		stepStart := c.tel.Now()
		// stepSpan parents every span the cloud opens this step. It is a pure
		// hash of (kind, step), so it is computed unconditionally — on and off
		// runs execute the same code and put the same bytes on the wire.
		stepSpan := telemetry.DeriveSpanID(telemetry.SpanStep, t, -1, -1)
		cloudRound := (t+1)%c.cfg.CloudInterval == 0
		var blob codec.Blob
		var blobID uint64
		if resetParams && !raw {
			var err error
			blob, blobID, err = c.encodeGlobal()
			if err != nil {
				return nil, fmt.Errorf("fed: step %d encode global: %w", t, err)
			}
		}
		// The index's member slices stay valid until the next advance, which
		// happens strictly after wg.Wait — net/rpc encodes args inside each
		// goroutine — so they are safe to hand to the RPC layer uncopied.
		if err := c.advanceMobility(t); err != nil {
			return nil, fmt.Errorf("fed: step %d: %w", t, err)
		}
		var wg sync.WaitGroup
		errs := make([]error, c.nEdges)
		for n := range c.edges {
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				args := EdgeStepArgs{
					Step:      t,
					Members:   c.memberIndex.Members(n),
					Capacity:  capacity,
					Scheme:    c.cfg.Codec,
					WantModel: cloudRound && !raw,
					Span:      SpanContext{Parent: uint64(telemetry.DeriveSpanID(telemetry.SpanRPCEdgeStep, t, n, -1))},
				}
				if resetParams {
					if raw {
						args.Params = c.global
					} else {
						args.Model = blob
						args.ModelID = blobID
						args.HasModel = true
					}
					c.transfers.Add(1)
				}
				var rep EdgeStepReply
				c.tel.Add(telemetry.CounterRPCCalls, 1)
				sp := c.tel.StartSpan(telemetry.SpanRPCEdgeStep, stepSpan, t, n, -1)
				err := c.edges[n].Call("Edge.Step", args, &rep)
				sp.End()
				if err != nil {
					errs[n] = err
					return
				}
				switch {
				case raw:
					edgeParams[n] = rep.Params
					c.transfers.Add(1)
				case rep.HasModel:
					params, err := c.decodeEdgeModel(rep.Model)
					if err != nil {
						errs[n] = err
						return
					}
					edgeParams[n] = params
					c.transfers.Add(1)
				}
			}(n)
		}
		wg.Wait()
		for n, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("fed: step %d edge %d: %w", t, n, err)
			}
		}
		resetParams = false

		if cloudRound {
			reduceSp := c.tel.StartSpan(telemetry.SpanCloudReduce, stepSpan, t, -1, -1)
			c.aggregate(t, edgeParams)
			reduceSp.End()
			resetParams = true
			for i, host := range c.deviceHosts {
				var rep CloudRoundReply
				c.tel.Add(telemetry.CounterRPCCalls, 1)
				crArgs := CloudRoundArgs{
					Step: t + 1,
					Span: SpanContext{Parent: uint64(telemetry.DeriveSpanID(telemetry.SpanRPCCloudRound, t, -1, i))},
				}
				sp := c.tel.StartSpan(telemetry.SpanRPCCloudRound, stepSpan, t, -1, i)
				err := host.Call("Device.CloudRound", crArgs, &rep)
				sp.End()
				if err != nil {
					return nil, fmt.Errorf("fed: cloud round on host %d: %w", i, err)
				}
			}
			c.tel.Add(telemetry.CounterCloudRounds, 1)
		}
		evalDue := cloudRound
		if c.cfg.EvalEvery > 0 {
			evalDue = (t+1)%c.cfg.EvalEvery == 0
		}
		if evalDue || t == c.cfg.Steps-1 {
			evalStart := c.tel.Now()
			if err := c.evalNet.SetParamVector(c.global); err != nil {
				return nil, err
			}
			x, y := c.test.All()
			acc, loss := c.evalNet.Evaluate(x, y)
			hist.Add(metrics.Point{Step: t + 1, Accuracy: acc, Loss: loss})
			evalEnd := c.tel.Now()
			c.tel.Observe(telemetry.HistEvalNS, evalEnd-evalStart)
			c.tel.RecordSpan(telemetry.SpanEval, stepSpan, t, -1, -1, evalStart, evalEnd)
			c.tel.Add(telemetry.CounterEvals, 1)
			c.tel.SetGauge(telemetry.GaugeAccuracy, acc)
			c.tel.SetGauge(telemetry.GaugeLoss, loss)
		}
		c.tel.Add(telemetry.CounterSteps, 1)
		stepEnd := c.tel.Now()
		c.tel.Observe(telemetry.HistStepNS, stepEnd-stepStart)
		c.tel.RecordSpan(telemetry.SpanStep, 0, t, -1, -1, stepStart, stepEnd)
		if comm := c.comm.Load(); comm != prevComm {
			c.tel.Add(telemetry.CounterCloudBytes, comm-prevComm)
			prevComm = comm
		}
	}
	return hist, nil
}

// encodeGlobal packs the current global model for distribution: a delta
// against the previously distributed global when there is one, baseline-free
// on the first distribution. It returns the blob and the new global's ID and
// records the receivers' view of it for the next round trip.
func (c *Cloud) encodeGlobal() (codec.Blob, uint64, error) {
	var baseline []float64
	var baseID uint64
	if len(c.prevView) == len(c.global) && c.prevID != 0 {
		baseline, baseID = c.prevView, c.prevID
	}
	var ef []float64
	if c.cfg.Codec == codec.SchemeInt8 {
		if len(c.efGlobal) != len(c.global) {
			c.efGlobal = make([]float64, len(c.global))
		}
		ef = c.efGlobal
	}
	blob, err := codec.Encode(c.cfg.Codec, c.global, baseline, baseID, ef)
	if err != nil {
		return codec.Blob{}, 0, err
	}
	// Record exactly what receivers will hold after decoding; under lossy
	// schemes that differs from c.global, and edge replies come back encoded
	// against it.
	view, err := codec.Decode(blob, baseline)
	if err != nil {
		return codec.Blob{}, 0, err
	}
	c.lastID++
	c.prevView, c.prevID = view, c.lastID
	return blob, c.lastID, nil
}

// decodeEdgeModel unpacks an edge's model reply, which is encoded against
// the last global the cloud distributed (or baseline-free before the first
// distribution reached that edge).
func (c *Cloud) decodeEdgeModel(blob codec.Blob) ([]float64, error) {
	var baseline []float64
	if blob.Baseline != 0 {
		if blob.Baseline != c.prevID {
			return nil, fmt.Errorf("fed: edge model against global %d, cloud last sent %d: %w",
				blob.Baseline, c.prevID, codec.ErrUnknownBaseline)
		}
		baseline = c.prevView
	}
	return codec.Decode(blob, baseline)
}

// advanceMobility positions the cloud's mobility window at step t: it
// advances the source, maintains the attachment row, and repairs the member
// index from the move stream. Advancing to the current position is a no-op.
func (c *Cloud) advanceMobility(t int) error {
	if t == c.srcPos {
		return nil
	}
	moves, rebuilt, err := c.src.AdvanceTo(t)
	if err != nil {
		return fmt.Errorf("mobility source: %w", err)
	}
	if rebuilt || c.srcPos < 0 {
		c.row = c.src.Snapshot(c.row)
		rebuilt = true
	} else {
		mobility.ApplyMoves(c.row, moves)
	}
	c.memberIndex.AdvanceWith(t, c.row, moves, rebuilt)
	c.srcPos = t
	return nil
}

// aggregate merges edge models with the member-count weights of Eq. (6). Run
// has already positioned the member index at t by the time it aggregates.
func (c *Cloud) aggregate(t int, edgeParams [][]float64) {
	total := 0
	counts := make([]int, c.nEdges)
	for n := range counts {
		counts[n] = c.memberIndex.Count(n)
		total += counts[n]
	}
	next := make([]float64, len(c.global))
	for n, params := range edgeParams {
		if counts[n] == 0 || params == nil {
			continue
		}
		w := float64(counts[n]) / float64(total)
		for j, v := range params {
			next[j] += w * v
		}
	}
	c.global = next
}
