package fed

import (
	"fmt"
	"net/rpc"
	"sync"

	"github.com/mach-fl/mach/internal/dataset"
	"github.com/mach-fl/mach/internal/hfl"
	"github.com/mach-fl/mach/internal/metrics"
	"github.com/mach-fl/mach/internal/mobility"
	"github.com/mach-fl/mach/internal/nn"
)

// CloudConfig parameterizes the coordinator.
type CloudConfig struct {
	// Steps is T, CloudInterval is T_g (Eq. 6).
	Steps         int
	CloudInterval int
	// Participation sets the per-edge capacity K_n =
	// Participation·|M|/|N|, as in the simulator.
	Participation float64
	// EvalEvery evaluates the global model every EvalEvery steps
	// (0 = every cloud round).
	EvalEvery int
	// Seed drives model initialization.
	Seed int64
}

// Validate reports whether the config is usable.
func (c CloudConfig) Validate() error {
	switch {
	case c.Steps <= 0 || c.CloudInterval <= 0:
		return fmt.Errorf("fed: cloud steps/interval %d/%d must be positive", c.Steps, c.CloudInterval)
	case c.Participation <= 0 || c.Participation > 1:
		return fmt.Errorf("fed: participation %v outside (0,1]", c.Participation)
	case c.EvalEvery < 0:
		return fmt.Errorf("fed: eval interval %d negative", c.EvalEvery)
	}
	return nil
}

// Cloud is the coordinator: it owns the mobility schedule, drives time
// steps across edge servers, aggregates edge models every T_g steps and
// redistributes the global model (Eq. 6).
type Cloud struct {
	cfg      CloudConfig
	schedule *mobility.Schedule
	test     *dataset.Dataset
	evalNet  *nn.Network
	global   []float64

	edges       []*rpc.Client
	deviceHosts []*rpc.Client
}

// NewCloud dials the edge servers and device hosts and initializes the
// global model from arch.
func NewCloud(cfg CloudConfig, arch hfl.ArchFunc, schedule *mobility.Schedule, test *dataset.Dataset, edgeAddrs, deviceHostAddrs []string) (*Cloud, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if schedule == nil || schedule.Validate() != nil {
		return nil, fmt.Errorf("fed: cloud needs a valid schedule")
	}
	if len(edgeAddrs) != schedule.Edges {
		return nil, fmt.Errorf("fed: %d edge addresses for %d scheduled edges", len(edgeAddrs), schedule.Edges)
	}
	if schedule.Steps < cfg.Steps {
		return nil, fmt.Errorf("fed: schedule covers %d steps, config needs %d", schedule.Steps, cfg.Steps)
	}
	if test == nil || test.Len() == 0 {
		return nil, fmt.Errorf("fed: cloud needs a test set")
	}
	rng := newRand(cfg.Seed)
	net0, err := arch(rng)
	if err != nil {
		return nil, fmt.Errorf("fed: build global model: %w", err)
	}
	c := &Cloud{
		cfg:      cfg,
		schedule: schedule,
		test:     test,
		evalNet:  net0,
		global:   net0.ParamVector(),
	}
	for _, addr := range edgeAddrs {
		cl, err := rpc.Dial("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("fed: cloud dial edge %s: %w", addr, err)
		}
		c.edges = append(c.edges, cl)
	}
	for _, addr := range deviceHostAddrs {
		cl, err := rpc.Dial("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("fed: cloud dial device host %s: %w", addr, err)
		}
		c.deviceHosts = append(c.deviceHosts, cl)
	}
	return c, nil
}

// Close drops all connections, reporting the first failure.
func (c *Cloud) Close() error {
	var firstErr error
	for _, cl := range c.edges {
		if err := cl.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, cl := range c.deviceHosts {
		if err := cl.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// GlobalParams returns a copy of the current global model parameters.
func (c *Cloud) GlobalParams() []float64 { return append([]float64(nil), c.global...) }

// Run drives the full training (Algorithm 1 over RPC) and returns the
// accuracy history.
func (c *Cloud) Run() (*metrics.History, error) {
	hist := &metrics.History{}
	capacity := c.cfg.Participation * float64(c.schedule.Devices) / float64(c.schedule.Edges)
	resetParams := true // first step seeds every edge with the global model
	edgeParams := make([][]float64, c.schedule.Edges)

	for t := 0; t < c.cfg.Steps; t++ {
		var wg sync.WaitGroup
		errs := make([]error, c.schedule.Edges)
		for n := range c.edges {
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				args := EdgeStepArgs{
					Step:     t,
					Members:  c.schedule.MembersAt(t, n),
					Capacity: capacity,
				}
				if resetParams {
					args.Params = c.global
				}
				var rep EdgeStepReply
				if err := c.edges[n].Call("Edge.Step", args, &rep); err != nil {
					errs[n] = err
					return
				}
				edgeParams[n] = rep.Params
			}(n)
		}
		wg.Wait()
		for n, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("fed: step %d edge %d: %w", t, n, err)
			}
		}
		resetParams = false

		cloudRound := (t+1)%c.cfg.CloudInterval == 0
		if cloudRound {
			c.aggregate(t, edgeParams)
			resetParams = true
			for i, host := range c.deviceHosts {
				var rep CloudRoundReply
				if err := host.Call("Device.CloudRound", CloudRoundArgs{Step: t + 1}, &rep); err != nil {
					return nil, fmt.Errorf("fed: cloud round on host %d: %w", i, err)
				}
			}
		}
		evalDue := cloudRound
		if c.cfg.EvalEvery > 0 {
			evalDue = (t+1)%c.cfg.EvalEvery == 0
		}
		if evalDue || t == c.cfg.Steps-1 {
			if err := c.evalNet.SetParamVector(c.global); err != nil {
				return nil, err
			}
			x, y := c.test.All()
			acc, loss := c.evalNet.Evaluate(x, y)
			hist.Add(metrics.Point{Step: t + 1, Accuracy: acc, Loss: loss})
		}
	}
	return hist, nil
}

// aggregate merges edge models with the member-count weights of Eq. (6).
func (c *Cloud) aggregate(t int, edgeParams [][]float64) {
	total := 0
	counts := make([]int, c.schedule.Edges)
	for n := range counts {
		counts[n] = len(c.schedule.MembersAt(t, n))
		total += counts[n]
	}
	next := make([]float64, len(c.global))
	for n, params := range edgeParams {
		if counts[n] == 0 || params == nil {
			continue
		}
		w := float64(counts[n]) / float64(total)
		for j, v := range params {
			next[j] += w * v
		}
	}
	c.global = next
}
