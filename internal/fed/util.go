package fed

import "math/rand"

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
