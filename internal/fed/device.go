package fed

import (
	"fmt"
	"math/rand"
	"net"
	"net/rpc"
	"sync"

	"github.com/mach-fl/mach/internal/dataset"
	"github.com/mach-fl/mach/internal/hfl"
	"github.com/mach-fl/mach/internal/nn"
	"github.com/mach-fl/mach/internal/sampling"
)

// DeviceServer hosts a set of logical mobile devices: their datasets, model
// replicas, optimizers and — per the paper's device-side design — their
// gradient experience buffers. One process typically hosts many devices
// (like one simulator machine emulating a fleet).
type DeviceServer struct {
	mu      sync.Mutex
	devices map[int]*hostedDevice
	book    *sampling.ExperienceBook
	arch    hfl.ArchFunc
	seed    int64

	listener net.Listener
	server   *rpc.Server
}

type hostedDevice struct {
	data  *dataset.Dataset
	model *nn.Network
	opt   *nn.SGD
	rng   *rand.Rand
	dist  []float64
}

// NewDeviceServer creates a host for the given logical devices (deviceID →
// dataset). machCfg parameterizes the on-device UCB estimator.
func NewDeviceServer(arch hfl.ArchFunc, data map[int]*dataset.Dataset, machCfg sampling.MACHConfig, seed int64) (*DeviceServer, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("fed: device server needs at least one device")
	}
	maxID := 0
	for id, d := range data {
		if d == nil || d.Len() == 0 {
			return nil, fmt.Errorf("fed: device %d has no data", id)
		}
		if id > maxID {
			maxID = id
		}
	}
	ds := &DeviceServer{
		devices: make(map[int]*hostedDevice, len(data)),
		book:    sampling.NewExperienceBook(maxID+1, machCfg.ExplorationCoef, machCfg.Discount),
		arch:    arch,
		seed:    seed,
	}
	for id, d := range data {
		rng := rand.New(rand.NewSource(seed + int64(id)*311))
		model, err := arch(rng)
		if err != nil {
			return nil, fmt.Errorf("fed: build model for device %d: %w", id, err)
		}
		ds.devices[id] = &hostedDevice{
			data:  d,
			model: model,
			opt:   nn.NewSGD(0.01),
			rng:   rng,
			dist:  d.ClassDistribution(),
		}
	}
	return ds, nil
}

// Serve starts listening on addr ("host:0" for an ephemeral port) and
// serves RPCs until Close. It returns the bound address.
func (s *DeviceServer) Serve(addr string) (string, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Device", s); err != nil {
		return "", fmt.Errorf("fed: register device service: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("fed: device listen: %w", err)
	}
	s.listener = ln
	s.server = srv
	go acceptLoop(srv, ln)
	return ln.Addr().String(), nil
}

// Close stops the listener.
func (s *DeviceServer) Close() error {
	if s.listener == nil {
		return nil
	}
	return s.listener.Close()
}

func acceptLoop(srv *rpc.Server, ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		go srv.ServeConn(conn)
	}
}

// Ping implements the liveness RPC.
func (s *DeviceServer) Ping(_ PingArgs, reply *PingReply) error {
	reply.Role = "device-host"
	return nil
}

// Estimate returns the devices' current UCB gradient-norm estimates
// (Eq. 15). Unknown devices yield an error: the edge's membership view is
// stale.
func (s *DeviceServer) Estimate(args EstimateArgs, reply *EstimateReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	reply.Estimates = make([]float64, len(args.Devices))
	for i, id := range args.Devices {
		if _, ok := s.devices[id]; !ok {
			return fmt.Errorf("fed: device %d not hosted here", id)
		}
		reply.Estimates[i] = s.book.UCBEstimate(id, args.Step)
	}
	return nil
}

// ClassDist returns the devices' local label distributions.
func (s *DeviceServer) ClassDist(args ClassDistArgs, reply *ClassDistReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	reply.Distributions = make([][]float64, len(args.Devices))
	for i, id := range args.Devices {
		dev, ok := s.devices[id]
		if !ok {
			return fmt.Errorf("fed: device %d not hosted here", id)
		}
		reply.Distributions[i] = append([]float64(nil), dev.dist...)
	}
	return nil
}

// Train runs local updating (Eq. 4) on one device and records the training
// experience in the device-side buffer (Algorithm 2, line 1).
//
// Concurrent Train calls are safe for distinct devices (each owns its model
// and RNG); calls for the same device must be serialized by the caller,
// which the schedule's partition property (Eq. 1 — a device attaches to
// exactly one edge per step) guarantees in a correct deployment.
func (s *DeviceServer) Train(args TrainArgs, reply *TrainReply) error {
	s.mu.Lock()
	dev, ok := s.devices[args.Device]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("fed: device %d not hosted here", args.Device)
	}
	if args.Hyper.LocalEpochs <= 0 || args.Hyper.BatchSize <= 0 || args.Hyper.LearningRate <= 0 {
		return fmt.Errorf("fed: invalid hyperparameters %+v", args.Hyper)
	}
	if err := dev.model.SetParamVector(args.Params); err != nil {
		return fmt.Errorf("fed: device %d: %w", args.Device, err)
	}
	dev.opt.SetLearningRate(args.Hyper.LearningRate)
	sqNorms := make([]float64, args.Hyper.LocalEpochs)
	for tau := range sqNorms {
		x, y := dev.data.RandomBatch(dev.rng, args.Hyper.BatchSize)
		_, gn := dev.model.TrainStep(x, y, dev.opt)
		sqNorms[tau] = gn
	}
	s.book.Observe(args.Device, sqNorms)
	reply.Params = dev.model.ParamVector()
	reply.SqNorms = sqNorms
	return nil
}

// CloudRound folds the hosted devices' experience buffers (Algorithm 2,
// lines 2-4).
func (s *DeviceServer) CloudRound(args CloudRoundArgs, reply *CloudRoundReply) error {
	s.book.CloudRound(args.Step)
	*reply = CloudRoundReply{}
	return nil
}
