package fed

import (
	"fmt"
	"math/rand"
	"net"
	"net/rpc"
	"sync"

	"github.com/mach-fl/mach/internal/codec"
	"github.com/mach-fl/mach/internal/dataset"
	"github.com/mach-fl/mach/internal/hfl"
	"github.com/mach-fl/mach/internal/nn"
	"github.com/mach-fl/mach/internal/sampling"
	"github.com/mach-fl/mach/internal/telemetry"
)

// DeviceServer hosts a set of logical mobile devices: their datasets, model
// replicas, optimizers and — per the paper's device-side design — their
// gradient experience buffers. One process typically hosts many devices
// (like one simulator machine emulating a fleet).
type DeviceServer struct {
	mu      sync.Mutex
	devices map[int]*hostedDevice
	book    *sampling.ExperienceBook
	arch    hfl.ArchFunc
	seed    int64

	// edgeBases caches, per edge, the base models installed by SetBase or
	// advanced in place by TrainMany (DESIGN.md §6). At most a couple of
	// vectors per edge are alive at any time: SetBase replaces the edge's
	// whole cache and TrainMany's advance drops the base it consumed.
	edgeBases map[int]map[uint64][]float64
	// efSum holds the per-edge error-feedback buffers for lossy update-sum
	// encodes (codec.SchemeInt8 streams).
	efSum map[int][]float64

	listener net.Listener
	server   *rpc.Server

	// tel counts served RPCs and training activity; nil disables it.
	tel *telemetry.Telemetry
}

// SetTelemetry attaches a telemetry sink (nil detaches). Call before Serve.
func (s *DeviceServer) SetTelemetry(t *telemetry.Telemetry) { s.tel = t }

type hostedDevice struct {
	data  *dataset.Dataset
	model *nn.Network
	opt   *nn.SGD
	rng   *rand.Rand
	dist  []float64
}

// NewDeviceServer creates a host for the given logical devices (deviceID →
// dataset). machCfg parameterizes the on-device UCB estimator.
func NewDeviceServer(arch hfl.ArchFunc, data map[int]*dataset.Dataset, machCfg sampling.MACHConfig, seed int64) (*DeviceServer, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("fed: device server needs at least one device")
	}
	maxID := 0
	for id, d := range data {
		if d == nil || d.Len() == 0 {
			return nil, fmt.Errorf("fed: device %d has no data", id)
		}
		if id > maxID {
			maxID = id
		}
	}
	ds := &DeviceServer{
		devices:   make(map[int]*hostedDevice, len(data)),
		book:      sampling.NewExperienceBook(maxID+1, machCfg.ExplorationCoef, machCfg.Discount),
		arch:      arch,
		seed:      seed,
		edgeBases: make(map[int]map[uint64][]float64),
		efSum:     make(map[int][]float64),
	}
	for id, d := range data {
		rng := rand.New(rand.NewSource(seed + int64(id)*311))
		model, err := arch(rng)
		if err != nil {
			return nil, fmt.Errorf("fed: build model for device %d: %w", id, err)
		}
		ds.devices[id] = &hostedDevice{
			data:  d,
			model: model,
			opt:   nn.NewSGD(0.01),
			rng:   rng,
			dist:  d.ClassDistribution(),
		}
	}
	return ds, nil
}

// Serve starts listening on addr ("host:0" for an ephemeral port) and
// serves RPCs until Close. It returns the bound address.
func (s *DeviceServer) Serve(addr string) (string, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Device", s); err != nil {
		return "", fmt.Errorf("fed: register device service: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("fed: device listen: %w", err)
	}
	s.listener = ln
	s.server = srv
	go acceptLoop(srv, ln)
	return ln.Addr().String(), nil
}

// Close stops the listener.
func (s *DeviceServer) Close() error {
	if s.listener == nil {
		return nil
	}
	return s.listener.Close()
}

func acceptLoop(srv *rpc.Server, ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		go srv.ServeConn(conn)
	}
}

// Ping implements the liveness RPC.
func (s *DeviceServer) Ping(_ PingArgs, reply *PingReply) error {
	s.tel.Add(telemetry.CounterRPCCalls, 1)
	reply.Role = "device-host"
	return nil
}

// Estimate returns the devices' current UCB gradient-norm estimates
// (Eq. 15). Unknown devices yield an error: the edge's membership view is
// stale.
func (s *DeviceServer) Estimate(args EstimateArgs, reply *EstimateReply) error {
	s.tel.Add(telemetry.CounterRPCCalls, 1)
	sp := s.tel.StartSpan(telemetry.SpanHandleEstimate, telemetry.SpanID(args.Span.Parent), args.Step, -1, -1)
	defer sp.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	reply.Estimates = make([]float64, len(args.Devices))
	for i, id := range args.Devices {
		if _, ok := s.devices[id]; !ok {
			return fmt.Errorf("fed: device %d not hosted here", id)
		}
		reply.Estimates[i] = s.book.UCBEstimate(id, args.Step)
	}
	return nil
}

// ClassDist returns the devices' local label distributions.
func (s *DeviceServer) ClassDist(args ClassDistArgs, reply *ClassDistReply) error {
	s.tel.Add(telemetry.CounterRPCCalls, 1)
	s.mu.Lock()
	defer s.mu.Unlock()
	reply.Distributions = make([][]float64, len(args.Devices))
	for i, id := range args.Devices {
		dev, ok := s.devices[id]
		if !ok {
			return fmt.Errorf("fed: device %d not hosted here", id)
		}
		reply.Distributions[i] = append([]float64(nil), dev.dist...)
	}
	return nil
}

// Train runs local updating (Eq. 4) on one device and records the training
// experience in the device-side buffer (Algorithm 2, line 1).
//
// Concurrent Train calls are safe for distinct devices (each owns its model
// and RNG); calls for the same device must be serialized by the caller,
// which the schedule's partition property (Eq. 1 — a device attaches to
// exactly one edge per step) guarantees in a correct deployment.
func (s *DeviceServer) Train(args TrainArgs, reply *TrainReply) error {
	s.tel.Add(telemetry.CounterRPCCalls, 1)
	sp := s.tel.StartSpan(telemetry.SpanHandleTrain, telemetry.SpanID(args.Span.Parent), args.Step, -1, args.Device)
	defer sp.End()
	s.mu.Lock()
	dev, ok := s.devices[args.Device]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("fed: device %d not hosted here", args.Device)
	}
	sqNorms, err := s.trainOne(dev, args.Device, args.Params, args.Hyper)
	if err != nil {
		return err
	}
	reply.Params = dev.model.ParamVector()
	reply.SqNorms = sqNorms
	return nil
}

// trainOne runs local updating (Eq. 4) on one hosted device from the given
// base parameters and records the experience. The device's model holds the
// trained parameters afterwards.
func (s *DeviceServer) trainOne(dev *hostedDevice, id int, base []float64, hyper Hyper) ([]float64, error) {
	if hyper.LocalEpochs <= 0 || hyper.BatchSize <= 0 || hyper.LearningRate <= 0 {
		return nil, fmt.Errorf("fed: invalid hyperparameters %+v", hyper)
	}
	if err := dev.model.SetParamVector(base); err != nil {
		return nil, fmt.Errorf("fed: device %d: %w", id, err)
	}
	dev.opt.SetLearningRate(hyper.LearningRate)
	sqNorms := make([]float64, hyper.LocalEpochs)
	for tau := range sqNorms {
		x, y := dev.data.RandomBatch(dev.rng, hyper.BatchSize)
		_, gn := dev.model.TrainStep(x, y, dev.opt)
		sqNorms[tau] = gn
	}
	s.book.Observe(id, sqNorms)
	s.tel.Add(telemetry.CounterDevicesTrained, 1)
	return sqNorms, nil
}

// SetBase caches an edge's base model under a baseline ID (DESIGN.md §6).
// Installing a base replaces every earlier base of that edge, so the cache
// holds at most one vector per edge between steps.
func (s *DeviceServer) SetBase(args SetBaseArgs, reply *SetBaseReply) error {
	s.tel.Add(telemetry.CounterRPCCalls, 1)
	sp := s.tel.StartSpan(telemetry.SpanHandleSetBase, telemetry.SpanID(args.Span.Parent), -1, args.Edge, -1)
	defer sp.End()
	params, err := codec.Decode(args.Model, nil)
	if err != nil {
		return fmt.Errorf("fed: set base for edge %d: %w", args.Edge, err)
	}
	s.mu.Lock()
	s.edgeBases[args.Edge] = map[uint64][]float64{args.ID: params}
	s.mu.Unlock()
	*reply = SetBaseReply{}
	return nil
}

// GetBase returns the bits of a cached base model, always encoded lossless
// so the caller recovers exactly what the hosted devices train from.
func (s *DeviceServer) GetBase(args GetBaseArgs, reply *GetBaseReply) error {
	s.tel.Add(telemetry.CounterRPCCalls, 1)
	sp := s.tel.StartSpan(telemetry.SpanHandleGetBase, telemetry.SpanID(args.Span.Parent), -1, args.Edge, -1)
	defer sp.End()
	base, err := s.lookupBase(args.Edge, args.ID)
	if err != nil {
		return err
	}
	blob, err := codec.Encode(codec.SchemeDelta, base, nil, 0, nil)
	if err != nil {
		return err
	}
	reply.Model = blob
	return nil
}

func (s *DeviceServer) lookupBase(edge int, id uint64) ([]float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	base, ok := s.edgeBases[edge][id]
	if !ok {
		return nil, fmt.Errorf("fed: edge %d base %d not cached here: %w", edge, id, codec.ErrUnknownBaseline)
	}
	return base, nil
}

// TrainMany runs local updating on every listed device from the cached base
// named by BaseID and returns the summed update Σ(w_m − base), accumulated
// in args.Devices order so the edge's aggregation is order-identical to the
// raw path's. With args.Advance the host instead folds the sum into the
// next base itself (base + Σ/|Devices|), installs it under NextID and ships
// no vector at all. Devices train sequentially: they share the host's
// compute the way one simulator machine emulates a fleet, and cross-host
// parallelism comes from the edge's concurrent dispatch.
func (s *DeviceServer) TrainMany(args TrainManyArgs, reply *TrainManyReply) error {
	s.tel.Add(telemetry.CounterRPCCalls, 1)
	sp := s.tel.StartSpan(telemetry.SpanHandleTrainMany, telemetry.SpanID(args.Span.Parent), args.Step, args.Edge, -1)
	defer sp.End()
	if err := args.Scheme.Validate(); err != nil {
		return err
	}
	if len(args.Devices) == 0 {
		return fmt.Errorf("fed: TrainMany with no devices")
	}
	base, err := s.lookupBase(args.Edge, args.BaseID)
	if err != nil {
		return err
	}
	sum := make([]float64, len(base))
	reply.SqNorms = make([][]float64, len(args.Devices))
	for i, id := range args.Devices {
		s.mu.Lock()
		dev, ok := s.devices[id]
		s.mu.Unlock()
		if !ok {
			return fmt.Errorf("fed: device %d not hosted here", id)
		}
		sqNorms, err := s.trainOne(dev, id, base, args.Hyper)
		if err != nil {
			return err
		}
		reply.SqNorms[i] = sqNorms
		trained := dev.model.ParamVector()
		for j, v := range trained {
			sum[j] += v - base[j]
		}
	}

	if args.Advance {
		inv := 1 / float64(len(args.Devices))
		next := make([]float64, len(base))
		for j := range next {
			next[j] = base[j] + inv*sum[j]
		}
		s.mu.Lock()
		bases := s.edgeBases[args.Edge]
		delete(bases, args.BaseID)
		bases[args.NextID] = next
		s.mu.Unlock()
		return nil
	}

	var ef []float64
	if args.Scheme == codec.SchemeInt8 {
		s.mu.Lock()
		ef = s.efSum[args.Edge]
		if len(ef) != len(sum) {
			ef = make([]float64, len(sum))
			s.efSum[args.Edge] = ef
		}
		s.mu.Unlock()
	}
	blob, err := codec.Encode(args.Scheme, sum, nil, 0, ef)
	if err != nil {
		return err
	}
	reply.Sum = blob
	reply.HasSum = true
	return nil
}

// CloudRound folds the hosted devices' experience buffers (Algorithm 2,
// lines 2-4).
func (s *DeviceServer) CloudRound(args CloudRoundArgs, reply *CloudRoundReply) error {
	s.tel.Add(telemetry.CounterRPCCalls, 1)
	sp := s.tel.StartSpan(telemetry.SpanHandleCloudRound, telemetry.SpanID(args.Span.Parent), args.Step, -1, -1)
	defer sp.End()
	s.book.CloudRound(args.Step)
	*reply = CloudRoundReply{}
	return nil
}
