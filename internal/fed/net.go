package fed

import (
	"net"
	"net/rpc"
	"sync/atomic"
)

// countingConn wraps a net.Conn and tallies the bytes that actually cross
// it. Sitting under net/rpc's gob codec, it measures the true wire cost of
// the protocol — framing, field names and padding included — rather than an
// analytic bytes-per-parameter estimate.
type countingConn struct {
	net.Conn
	read  *atomic.Int64
	wrote *atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.read.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.wrote.Add(int64(n))
	return n, err
}

// dialCounting opens an RPC client whose connection counts inbound bytes
// into read and outbound bytes into wrote.
func dialCounting(addr string, read, wrote *atomic.Int64) (*rpc.Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return rpc.NewClient(&countingConn{Conn: conn, read: read, wrote: wrote}), nil
}
