// Mobility example: the full telecom-trace pipeline the paper uses with the
// Shanghai Telecom dataset — generate timestamped base-station access
// records, round-trip them through the CSV interchange format, cluster
// stations into main edges, derive the B^t schedule, and compare how a
// device-side experience strategy (MACH) and an edge-side one (statistical
// sampling) cope with devices that keep moving.
//
//	go run ./examples/mobility
package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"

	"github.com/mach-fl/mach/internal/bench"
	"github.com/mach-fl/mach/internal/hfl"
	"github.com/mach-fl/mach/internal/mobility"
	"github.com/mach-fl/mach/internal/sampling"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mobility:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		stations = 30
		devices  = 30
		edges    = 5
		steps    = 120
	)
	rng := rand.New(rand.NewSource(3))

	// Telecom-style deployment: stations clustered around urban cores.
	placed, err := mobility.PlaceStations(rng, stations, mobility.DefaultPlacement())
	if err != nil {
		return err
	}

	// Fast-moving devices stress cross-edge mobility.
	wcfg := mobility.DefaultWaypoint()
	wcfg.SpeedMin, wcfg.SpeedMax = 2, 8
	trace, err := mobility.GenerateWaypointTrace(rng, placed, devices, steps, wcfg)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d access records for %d devices over %d stations\n",
		len(trace.Records), trace.Devices(), trace.Stations())

	// Round-trip through the CSV interchange format (what cmd/tracegen
	// writes and cmd/machsim reads).
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf); err != nil {
		return err
	}
	parsed, err := mobility.ReadCSV(&buf)
	if err != nil {
		return err
	}

	// Cluster neighbouring stations into main edges, as the paper does for
	// sparse base stations, and derive the schedule.
	edgeOf, err := mobility.ClusterStations(rng, placed, edges)
	if err != nil {
		return err
	}
	schedule, err := mobility.BuildSchedule(parsed, edgeOf, edges, devices, steps, 1)
	if err != nil {
		return err
	}
	fmt.Printf("schedule: %.1f%% of device-steps change edge; mean devices per edge: ",
		100*schedule.TransitionRate())
	for _, o := range schedule.EdgeOccupancy() {
		fmt.Printf("%.1f ", o)
	}
	fmt.Println()

	// Same task, same schedule — only the sampling strategy differs.
	cfg := bench.TaskPreset(bench.TaskMNIST, bench.ScaleCI)
	cfg.Devices = devices
	cfg.Edges = edges
	cfg.Steps = steps
	env, err := cfg.BuildEnvironment(0)
	if err != nil {
		return err
	}
	env.Schedule = schedule

	for _, name := range []string{bench.StratStatistical, bench.StratMACH} {
		strat, err := cfg.NewStrategy(name)
		if err != nil {
			return err
		}
		eng, err := hfl.New(cfg.HFLConfig(0), cfg.Arch(), env.DeviceData, env.Test, env.Schedule, strat)
		if err != nil {
			return err
		}
		res, err := eng.Run()
		if err != nil {
			return err
		}
		where := "edge-side (forgets movers)"
		if name == bench.StratMACH {
			where = "device-side (travels with the device)"
		}
		fmt.Printf("%-12s experience %-38s final accuracy %.3f\n",
			name, where, res.History.FinalAccuracy())
	}

	// The same estimates, inspected directly: a MACH book retains a moved
	// device's experience; a per-edge statistical table does not.
	mach, err := sampling.NewMACH(devices, sampling.DefaultMACHConfig())
	if err != nil {
		return err
	}
	mach.Observe(0, 0, 7, []float64{4, 4, 4}) // device 7 trains at edge 0
	mach.CloudRound(1)
	fmt.Printf("\nMACH estimate for device 7 after it moves to edge 3: %.2f (experience retained)\n",
		mach.Book().UCBEstimate(7, 10))
	return nil
}
