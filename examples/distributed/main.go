// Distributed example: the same HFL algorithm as the simulator, but run as a
// real deployment — two device-host servers, three edge servers and a cloud
// coordinator, all speaking net/rpc over loopback TCP. Device-side experience
// buffers live on the device hosts, so a device's G̃² estimate follows it
// when mobility moves it between edges.
//
//	go run ./examples/distributed
//
// (cmd/machnode runs the identical roles as separate OS processes.)
package main

import (
	"fmt"
	"math/rand"
	"os"

	"github.com/mach-fl/mach/internal/bench"
	"github.com/mach-fl/mach/internal/dataset"
	"github.com/mach-fl/mach/internal/fed"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "distributed:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := bench.TaskPreset(bench.TaskMNIST, bench.ScaleCI)
	cfg.Devices = 18
	cfg.Edges = 3
	cfg.Steps = 60
	env, err := cfg.BuildEnvironment(0)
	if err != nil {
		return err
	}

	// Device hosts: two processes' worth of logical devices.
	const numHosts = 2
	table := map[int]string{}
	var hostAddrs []string
	for h := 0; h < numHosts; h++ {
		data := map[int]*dataset.Dataset{}
		for m := h * cfg.Devices / numHosts; m < (h+1)*cfg.Devices/numHosts; m++ {
			data[m] = env.DeviceData[m]
		}
		srv, err := fed.NewDeviceServer(cfg.Arch(), data, cfg.MACH, int64(100+h))
		if err != nil {
			return err
		}
		defer srv.Close() //machlint:allow errdrop best-effort teardown of a demo at process exit
		addr, err := srv.Serve("127.0.0.1:0")
		if err != nil {
			return err
		}
		hostAddrs = append(hostAddrs, addr)
		for m := range data {
			table[m] = addr
		}
		fmt.Printf("device host %d: %d devices on %s\n", h, len(data), addr)
	}

	// Edge servers.
	hyper := fed.Hyper{
		LocalEpochs:  cfg.LocalEpochs,
		BatchSize:    cfg.BatchSize,
		LearningRate: cfg.LearningRate,
	}
	base, err := cfg.Arch()(rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return err
	}
	var edgeAddrs []string
	for n := 0; n < cfg.Edges; n++ {
		e, err := fed.NewEdgeServer(n, cfg.MACH, hyper, int64(200+n), fed.StaticResolver(table), base.ParamVector())
		if err != nil {
			return err
		}
		defer e.Close() //machlint:allow errdrop best-effort teardown of a demo at process exit
		addr, err := e.Serve("127.0.0.1:0")
		if err != nil {
			return err
		}
		edgeAddrs = append(edgeAddrs, addr)
		fmt.Printf("edge %d: serving on %s\n", n, addr)
	}

	// Cloud coordinator drives the training over RPC.
	cloud, err := fed.NewCloud(fed.CloudConfig{
		Steps:         cfg.Steps,
		CloudInterval: cfg.CloudInterval,
		Participation: cfg.Participation,
		EvalEvery:     10,
		Seed:          cfg.Seed,
	}, cfg.Arch(), env.Schedule, env.Test, edgeAddrs, hostAddrs)
	if err != nil {
		return err
	}
	defer cloud.Close() //machlint:allow errdrop best-effort teardown of a demo at process exit

	fmt.Printf("cloud: training %d steps over %d edges, %d devices…\n",
		cfg.Steps, cfg.Edges, cfg.Devices)
	hist, err := cloud.Run()
	if err != nil {
		return err
	}
	for _, p := range hist.Points {
		fmt.Printf("  step %3d  accuracy %.3f  loss %.3f\n", p.Step, p.Accuracy, p.Loss)
	}
	fmt.Printf("final accuracy %.3f — same algorithm as the simulator, over real RPC\n",
		hist.FinalAccuracy())
	return nil
}
