// Bound example: evaluate the Theorem 1 convergence bound (Eq. 9) under
// different sampling strategies, numerically reproducing Remark 1/2 — the
// sampling strategy enters the bound only through Σ G²/q, each edge can
// minimize it independently, and the closed-form optimum beats uniform.
//
//	go run ./examples/bound
package main

import (
	"fmt"
	"math/rand"
	"os"

	"github.com/mach-fl/mach/internal/hfl"
	"github.com/mach-fl/mach/internal/sampling"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bound:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(5))
	const (
		edges    = 4
		perEdge  = 8
		capacity = 4.0 // K_n
		steps    = 100
	)

	// A heterogeneous population: per-device squared gradient-norm bounds
	// G²_m spread over an order of magnitude, as the diagnostics of
	// cmd/diag show mid-training.
	norms := make([][]float64, edges)
	for n := range norms {
		norms[n] = make([]float64, perEdge)
		for m := range norms[n] {
			norms[n][m] = 0.5 + rng.Float64()*rng.Float64()*20
		}
	}

	machCfg := sampling.DefaultMACHConfig()
	strategies := []struct {
		name  string
		probs func(edge []float64) []float64
	}{
		{"uniform", func(edge []float64) []float64 {
			q := make([]float64, len(edge))
			for i := range q {
				q[i] = capacity / float64(len(edge))
			}
			return q
		}},
		{"paper Eq.13 (∝G²)", func(edge []float64) []float64 {
			q := sampling.PaperVirtualProbabilities(capacity, edge)
			for i := range q {
				if q[i] > 1 {
					q[i] = 1
				}
				if q[i] < machCfg.QMin {
					q[i] = machCfg.QMin
				}
			}
			return q
		}},
		{"exact optimum (∝G)", func(edge []float64) []float64 {
			q := sampling.OptimalProbabilities(capacity, edge)
			for i := range q {
				if q[i] > 1 {
					q[i] = 1
				}
				if q[i] < machCfg.QMin {
					q[i] = machCfg.QMin
				}
			}
			return q
		}},
		{"MACH Eq.16-18", func(edge []float64) []float64 {
			qHat := sampling.PaperVirtualProbabilities(capacity, edge)
			scores := make([]float64, len(edge))
			total := 0.0
			for i, v := range qHat {
				scores[i] = machCfg.Transfer(v)
				total += scores[i]
			}
			q := make([]float64, len(edge))
			for i, s := range scores {
				q[i] = capacity * s / total
				if q[i] > 1 {
					q[i] = 1
				}
			}
			return q
		}},
	}

	params := hfl.BoundParams{
		InitialGap:    2,
		L:             1,
		Gamma:         0.01,
		LocalEpochs:   10,
		CloudInterval: 5,
		Devices:       edges * perEdge,
	}

	fmt.Printf("%-22s %14s %14s\n", "strategy", "Σ G²/q per step", "Theorem 1 bound")
	for _, st := range strategies {
		perStep := 0.0
		for _, edge := range norms {
			perStep += sampling.VarianceTerm(edge, st.probs(edge))
		}
		terms := make([]float64, steps)
		for t := range terms {
			terms[t] = perStep
		}
		bound, err := hfl.Theorem1Bound(params, terms)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %14.2f %14.4f\n", st.name, perStep, bound)
	}
	fmt.Println("\nsmaller is better; the bound is monotone in Σ G²/q (Remark 1),")
	fmt.Println("and each edge minimizes its own term independently (Remark 2).")
	return nil
}
