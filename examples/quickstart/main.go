// Quickstart: train a global model with MACH device sampling on a synthetic
// non-IID task over mobile devices, end to end, in under a minute.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"os"

	"github.com/mach-fl/mach/internal/bench"
	"github.com/mach-fl/mach/internal/dataset"
	"github.com/mach-fl/mach/internal/hfl"
	"github.com/mach-fl/mach/internal/mobility"
	"github.com/mach-fl/mach/internal/nn"
	"github.com/mach-fl/mach/internal/sampling"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		devices = 24
		edges   = 4
		steps   = 80
	)

	// 1. A synthetic 10-class image task (an MNIST stand-in) partitioned
	//    across devices with long-tailed non-IID label distributions.
	task, err := dataset.NewTask(dataset.MNISTLike(8, 8))
	if err != nil {
		return err
	}
	parts, err := dataset.Partition(task, dataset.PartitionConfig{
		Devices:          devices,
		SamplesPerDevice: 60,
		TailRatio:        0.25,
		GlobalTailRatio:  0.6,
		Seed:             7,
	})
	if err != nil {
		return err
	}
	test, err := task.Generate(rand.New(rand.NewSource(8)), 500, nil)
	if err != nil {
		return err
	}

	// 2. Mobile devices: a waypoint mobility trace over base stations,
	//    clustered into edges. The schedule is B^t — which edge each
	//    device touches at each step.
	schedule, err := mobility.GenerateSchedule(9, edges, devices, steps, 4)
	if err != nil {
		return err
	}
	fmt.Printf("mobility: %d devices over %d edges, %.1f%% cross-edge transitions per step\n",
		devices, edges, 100*schedule.TransitionRate())

	// 3. The MACH sampling strategy: UCB experience updating + smoothed
	//    edge sampling, no prior knowledge of device statistics.
	strategy, err := sampling.NewMACH(devices, sampling.DefaultMACHConfig())
	if err != nil {
		return err
	}

	// 4. Hierarchical federated training (Algorithm 1).
	arch := func(rng *rand.Rand) (*nn.Network, error) {
		return nn.NewMLP("quickstart", 64, []int{32}, 10, rng), nil
	}
	cfg := hfl.Config{
		Steps:         steps,
		CloudInterval: 5,
		LocalEpochs:   5,
		BatchSize:     8,
		LearningRate:  0.05,
		LRDecay:       1,
		Participation: 0.5,
		EvalEvery:     4,
		Seed:          10,
		Aggregation:   hfl.AggPlain,
	}
	engine, err := hfl.New(cfg, arch, parts, test, schedule, strategy)
	if err != nil {
		return err
	}
	res, err := engine.Run(hfl.WithEvalHook(func(step int, acc, loss float64) {
		fmt.Printf("step %3d  accuracy %.3f  loss %.3f\n", step, acc, loss)
	}))
	if err != nil {
		return err
	}

	// 5. Results.
	var xs []int
	var ys []float64
	for _, p := range res.History.Points {
		xs = append(xs, p.Step)
		ys = append(ys, p.Accuracy)
	}
	fmt.Println()
	bench.RenderCurveASCII(os.Stdout, "global model accuracy", xs, ys, 60, 10)
	fmt.Printf("\nfinal accuracy %.3f after %d steps (%d device participations)\n",
		res.History.FinalAccuracy(), res.StepsRun, res.TotalSampled)
	if step, ok := res.History.TimeToAccuracy(0.6); ok {
		fmt.Printf("reached 60%% accuracy at step %d\n", step)
	}
	return nil
}
