// Custom sampler example: the sampling.Strategy interface is the extension
// point of the library. This example implements a "stickiness-aware" sampler
// that favors devices that have stayed in the same edge (cheap, stable
// uplinks) and runs it through the full HFL engine next to the built-ins.
//
//	go run ./examples/customsampler
package main

import (
	"fmt"
	"os"
	"sync"

	"github.com/mach-fl/mach/internal/bench"
	"github.com/mach-fl/mach/internal/hfl"
	"github.com/mach-fl/mach/internal/sampling"
)

// Sticky favors devices that keep appearing in the same edge: every step a
// device is seen again at the edge raises its score, and moving resets it.
// It needs no gradient information at all — only the membership stream.
type Sticky struct {
	mu       sync.Mutex
	lastEdge map[int]int
	streak   map[int]float64
}

var _ sampling.Strategy = (*Sticky)(nil)

// NewSticky returns the example strategy.
func NewSticky() *Sticky {
	return &Sticky{lastEdge: map[int]int{}, streak: map[int]float64{}}
}

// Name implements sampling.Strategy.
func (*Sticky) Name() string { return "sticky" }

// Unbiased implements sampling.Strategy: stickiness scores feed the engine's
// plain aggregation path like class-balance does.
func (*Sticky) Unbiased() bool { return false }

// Probabilities implements sampling.Strategy.
func (s *Sticky) Probabilities(ctx *sampling.EdgeContext) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	scores := make([]float64, len(ctx.Members))
	for i, m := range ctx.Members {
		if last, ok := s.lastEdge[m]; ok && last == ctx.Edge {
			s.streak[m]++
		} else {
			s.streak[m] = 1
		}
		s.lastEdge[m] = ctx.Edge
		scores[i] = s.streak[m]
	}
	total := 0.0
	for _, v := range scores {
		total += v
	}
	out := make([]float64, len(scores))
	for i, v := range scores {
		q := ctx.Capacity * v / total
		if q > 1 {
			q = 1
		}
		out[i] = q
	}
	return out
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "customsampler:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := bench.TaskPreset(bench.TaskMNIST, bench.ScaleCI)
	cfg.Steps = 100
	env, err := cfg.BuildEnvironment(0)
	if err != nil {
		return err
	}

	run := func(name string, strat sampling.Strategy) (float64, error) {
		eng, err := hfl.New(cfg.HFLConfig(0), cfg.Arch(), env.DeviceData, env.Test, env.Schedule, strat)
		if err != nil {
			return 0, err
		}
		res, err := eng.Run()
		if err != nil {
			return 0, err
		}
		return res.History.FinalAccuracy(), nil
	}

	sticky, err := run("sticky", NewSticky())
	if err != nil {
		return err
	}
	uniStrat, err := cfg.NewStrategy(bench.StratUniform)
	if err != nil {
		return err
	}
	uniform, err := run("uniform", uniStrat)
	if err != nil {
		return err
	}
	machStrat, err := cfg.NewStrategy(bench.StratMACH)
	if err != nil {
		return err
	}
	mach, err := run("mach", machStrat)
	if err != nil {
		return err
	}

	fmt.Printf("final accuracy after %d steps:\n", cfg.Steps)
	fmt.Printf("  sticky (custom)  %.3f\n", sticky)
	fmt.Printf("  uniform          %.3f\n", uniform)
	fmt.Printf("  mach             %.3f\n", mach)
	fmt.Println("\nimplementing sampling.Strategy is all a new sampler needs.")
	return nil
}
