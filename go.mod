module github.com/mach-fl/mach

go 1.22
