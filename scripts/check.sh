#!/usr/bin/env sh
# check.sh — the repo's tier-1+ gate: vet, build, machlint, full test suite,
# and the race detector over the concurrent packages (the worker-pool engine
# and the row-parallel matmul). Run via `make check` or directly. Every PR
# must pass.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== machlint ./... (DESIGN.md §5.5 invariants)"
lint_t0=$(date +%s)
go run ./cmd/machlint ./...
lint_t1=$(date +%s)
echo "   lint wall time: $((lint_t1 - lint_t0))s"

echo "== machlint -ledger (committed suppression inventory is current)"
go run ./cmd/machlint -ledger ./... | diff - lint_ledger.txt \
	|| { echo "check: lint_ledger.txt is stale; regenerate with make lint-ledger" >&2; exit 1; }

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "== go test -race -short (parallel engine determinism)"
go test -race -short -run 'TestRunBitIdenticalAcrossWorkerCounts' ./internal/hfl

echo "== go test -race -short (fed wire protocol + codec)"
go test -race -short ./internal/fed/ ./internal/codec/

echo "== go test -race -short (fused-path determinism, both lanes)"
go test -race -short -run 'TestRunF32BitIdenticalAcrossWorkerCounts|TestRunFusedMatchesUnfused' ./internal/hfl

echo "== go test -race -short (sharded control plane, Shards=3 smoke)"
go test -race -short -run 'TestRunBitIdenticalAcrossShardCounts|TestShardedMatchesSeedEngineGolden' ./internal/hfl

echo "== streaming-vs-dense bit-identity smoke (StepSource plane, DESIGN.md §12)"
go test -count=1 -run 'TestRunStreamingMatchesDenseBitIdentical|TestTransitionStatsAreObservationOnly' ./internal/hfl
go test -count=1 -run 'TestMarkovSourceMatchesMaterializedTwin|TestGeoSourcesMatchMaterializedTwin|TestTraceSourceMatchesBuildSchedule|TestAdvanceWithMatchesAdvance' ./internal/mobility

echo "== go test -race (sharded engine on a streaming source)"
go test -race -count=1 -run 'TestRunStreamingMatchesDenseBitIdentical' ./internal/hfl

echo "== f32-lane + fusion smoke (seeded run, accuracy within tolerance of f64)"
go test -count=1 -run 'TestRunF32TracksF64' ./internal/hfl

echo "== scale bench smoke (-exp scale -quick, naive/indexed divergence check)"
scale_tmp=$(mktemp -d)
go run ./cmd/machbench -exp scale -quick -out "$scale_tmp" >/dev/null
rm -rf "$scale_tmp"

echo "== telemetry bench smoke (-exp telemetry -quick, cross-mode agreement check)"
tel_tmp=$(mktemp -d)
go run ./cmd/machbench -exp telemetry -quick -out "$tel_tmp" >/dev/null
rm -rf "$tel_tmp"

echo "== observability smoke (machsim -debug-addr, machtop scrape mid-run)"
obs_tmp=$(mktemp -d)
go build -o "$obs_tmp/machsim" ./cmd/machsim
go build -o "$obs_tmp/machtop" ./cmd/machtop
"$obs_tmp/machsim" -task mnist -strategy mach -steps 60 \
	-debug-addr 127.0.0.1:16060 -metrics-out "$obs_tmp/snap.json" \
	>/dev/null 2>"$obs_tmp/machsim.log" &
obs_pid=$!
# Poll /healthz until the debug server is up (the run itself takes longer).
obs_ok=0
for _ in $(seq 1 50); do
	if "$obs_tmp/machtop" scrape -addr 127.0.0.1:16060 >"$obs_tmp/scrape.out" 2>&1; then
		obs_ok=1
		break
	fi
	sleep 0.1
done
[ "$obs_ok" = 1 ] || { echo "check: machtop scrape never succeeded against a live machsim" >&2; \
	cat "$obs_tmp/scrape.out" "$obs_tmp/machsim.log" >&2; kill "$obs_pid" 2>/dev/null; exit 1; }
cat "$obs_tmp/scrape.out"
wait "$obs_pid" || { echo "check: machsim -debug-addr run failed" >&2; cat "$obs_tmp/machsim.log" >&2; exit 1; }
# The final snapshot must diff cleanly against itself (machtop diff exit 0).
"$obs_tmp/machtop" diff "$obs_tmp/snap.json" "$obs_tmp/snap.json" >/dev/null
rm -rf "$obs_tmp"

echo "== engine bench headline (committed BENCH_engine.json, serial row)"
awk '/"ns_per_step"/ && !ns {ns=$2} /"final_accuracy"/ && !acc {acc=$2} END \
	{gsub(/,/, "", ns); gsub(/,/, "", acc); printf "   ns_per_step=%s final_accuracy=%s\n", ns, acc}' BENCH_engine.json

echo "check: OK"
